(* Load generator for the admission service.

   e2e-loadgen --requests 2000 --seed 42 -j 4 --out BENCH_serve.json
   e2e-loadgen --connect 127.0.0.1:7070 --requests 500

   Replays a Prng-seeded open-loop request stream — submits of fresh
   task sets, permuted resubmissions (canonical-cache exercisers),
   incremental adds, queries and drops — either against an in-process
   Batcher (default; measures the engine itself) or over TCP against a
   running e2e-serve.  Reports throughput, latency percentiles and the
   cache hit rate, optionally as a JSON file (`make bench-serve` writes
   BENCH_serve.json). *)

open Cmdliner
module Rat = E2e_rat.Rat
module Prng = E2e_prng.Prng
module Task = E2e_model.Task
module Recurrence_shop = E2e_model.Recurrence_shop
module Feasible_gen = E2e_workload.Feasible_gen
module Admission = E2e_serve.Admission
module Batcher = E2e_serve.Batcher
module Cache = E2e_serve.Cache
module Protocol = E2e_serve.Protocol
module Rtrace = E2e_serve.Rtrace
module Pool = E2e_exec.Pool
module Obs = E2e_obs.Obs
module Json = E2e_obs.Json
module Quantile = E2e_obs.Quantile

(* ------------------------------------------------------------------ *)
(* Request-stream generation: a pure function of the seed.            *)

let gen_instance g =
  let n = 3 + Prng.int g 4 and m = 3 + Prng.int g 2 in
  Recurrence_shop.of_traditional
    (Feasible_gen.generate g
       { Feasible_gen.n_tasks = n; n_processors = m; mean_tau = 1.0; stdev = 0.5;
         slack_factor = 1.0 +. Prng.float g 1.0 })

(* Same instance, tasks relabelled: a canonical-cache hit that is not a
   textual repeat. *)
let permute g (shop : Recurrence_shop.t) =
  let order = Prng.permutation g (Recurrence_shop.n_tasks shop) in
  let tasks =
    Array.mapi
      (fun p orig ->
        let t = shop.Recurrence_shop.tasks.(orig) in
        Task.make ~id:p ~release:t.release ~deadline:t.deadline ~proc_times:t.proc_times)
      order
  in
  Recurrence_shop.make ~visit:shop.visit tasks

let gen_stream ~seed ~requests =
  let g = Prng.create seed in
  let submitted = ref [] (* (shop, instance), most recent first *) in
  let fresh = ref 0 in
  let fresh_shop () =
    incr fresh;
    Printf.sprintf "s%d" !fresh
  in
  let pick_shop g =
    match !submitted with
    | [] -> None
    | l -> Some (List.nth l (Prng.int g (List.length l)))
  in
  List.init requests (fun _ ->
      let p = Prng.float g 1.0 in
      if p < 0.40 || !submitted = [] then begin
        let shop = fresh_shop () and instance = gen_instance g in
        submitted := (shop, instance) :: !submitted;
        Admission.Submit { shop; instance }
      end
      else if p < 0.55 then begin
        (* Resubmit a permutation of an earlier set under a new name. *)
        let _, earlier = Option.get (pick_shop g) in
        let shop = fresh_shop () and instance = permute g earlier in
        submitted := (shop, instance) :: !submitted;
        Admission.Submit { shop; instance }
      end
      else if p < 0.65 then begin
        (* Exact resubmission under a new name: the common "same client,
           new session" pattern the structural keyer short-circuits. *)
        let _, earlier = Option.get (pick_shop g) in
        let shop = fresh_shop () in
        submitted := (shop, earlier) :: !submitted;
        Admission.Submit { shop; instance = earlier }
      end
      else if p < 0.83 then begin
        let shop, committed = Option.get (pick_shop g) in
        let k = Array.length committed.Recurrence_shop.tasks.(0).Task.proc_times in
        let count = 1 + Prng.int g 2 in
        let tasks =
          List.init count (fun _ ->
              let taus =
                Array.init k (fun _ -> Prng.rat_uniform g ~den:100 (Rat.make 1 2) (Rat.of_int 2))
              in
              let total = Rat.sum_array taus in
              let release = Prng.rat_uniform g ~den:100 Rat.zero (Rat.of_int 4) in
              let window = Rat.mul_int total (2 + Prng.int g 3) in
              (release, Rat.add release window, taus))
        in
        Admission.Add { shop; tasks }
      end
      else if p < 0.95 then
        let shop = match pick_shop g with Some (s, _) -> s | None -> "none" in
        Admission.Query { shop }
      else begin
        let shop = match pick_shop g with Some (s, _) -> s | None -> "none" in
        submitted := List.filter (fun (s, _) -> s <> shop) !submitted;
        Admission.Drop { shop }
      end)

(* ------------------------------------------------------------------ *)
(* Measurement                                                        *)

type tally = {
  mutable admitted : int;
  mutable rejected : int;
  mutable undecided : int;
  mutable info : int;
  mutable dropped : int;
  mutable errors : int;
  mutable overloaded : int;
}

let tally_reply t = function
  | Admission.Decided { decision = Admission.Admitted _; _ } -> t.admitted <- t.admitted + 1
  | Admission.Decided { decision = Admission.Rejected _; _ } -> t.rejected <- t.rejected + 1
  | Admission.Decided { decision = Admission.Undecided _; _ } ->
      t.undecided <- t.undecided + 1
  | Admission.Queried _ -> t.info <- t.info + 1
  | Admission.Dropped _ -> t.dropped <- t.dropped + 1
  | Admission.Request_error _ -> t.errors <- t.errors + 1

(* In-process replay: open-loop pacing (when [rate] > 0) against the
   batcher; per-request latency = reply time - arrival time, both read
   from [Obs.Clock] so a deterministic source makes the whole
   measurement (and any trace) reproducible. *)
let run_inproc ~stream ~config ~rate =
  let batcher = Batcher.create ~config () in
  let n = List.length stream in
  let t_arrival = Array.make n 0. in
  let latency = Quantile.create () in
  let tally =
    { admitted = 0; rejected = 0; undecided = 0; info = 0; dropped = 0; errors = 0;
      overloaded = 0 }
  in
  let pending_idx = Queue.create () in
  let record_replies replies =
    List.iter
      (fun (_, tr, reply) ->
        (* The loadgen "renders" nothing, so finish right away — this
           closes the render stage and streams the trace records. *)
        Rtrace.finish tr;
        let i = Queue.pop pending_idx in
        Quantile.observe latency (Obs.Clock.now () -. t_arrival.(i));
        tally_reply tally reply)
      replies
  in
  let t0 = Obs.Clock.now () in
  let next_arrival = ref t0 in
  let pace_g = Prng.create 0x9e3779b9 in
  List.iteri
    (fun i req ->
      if rate > 0. then begin
        (* Open loop: arrivals at exponential spacing, independent of
           service progress. *)
        next_arrival := !next_arrival +. Prng.exponential pace_g ~rate;
        let now = Unix.gettimeofday () in
        if !next_arrival > now then Unix.sleepf (!next_arrival -. now)
      end;
      t_arrival.(i) <- Obs.Clock.now ();
      (match Batcher.submit batcher req with
      | `Queued -> Queue.push i pending_idx
      | `Overloaded -> tally.overloaded <- tally.overloaded + 1);
      if Batcher.pending batcher >= config.Batcher.batch then
        record_replies (Batcher.step batcher))
    stream;
  let rec drain () =
    match Batcher.step batcher with [] -> () | replies -> record_replies replies; drain ()
  in
  drain ();
  let duration = Obs.Clock.now () -. t0 in
  ( duration,
    latency,
    tally,
    Batcher.cache_stats batcher,
    Some (Batcher.keyer_stats batcher) )

(* TCP replay: synchronous request/reply per line. *)
let run_tcp ~stream ~addr =
  let host, port =
    match String.split_on_char ':' addr with
    | [ h; p ] -> (h, int_of_string p)
    | _ -> failwith "--connect expects HOST:PORT"
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  ignore (input_line ic) (* greeting *);
  let tally =
    { admitted = 0; rejected = 0; undecided = 0; info = 0; dropped = 0; errors = 0;
      overloaded = 0 }
  in
  let latency = Quantile.create () in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun req ->
      let t_send = Unix.gettimeofday () in
      output_string oc (Protocol.render_request req ^ "\n");
      flush oc;
      let reply = input_line ic in
      Quantile.observe latency (Unix.gettimeofday () -. t_send);
      match String.split_on_char ' ' reply with
      | "admitted" :: _ -> tally.admitted <- tally.admitted + 1
      | "rejected" :: _ -> tally.rejected <- tally.rejected + 1
      | "undecided" :: _ -> tally.undecided <- tally.undecided + 1
      | "info" :: _ -> tally.info <- tally.info + 1
      | "dropped" :: _ -> tally.dropped <- tally.dropped + 1
      | "overloaded" :: _ -> tally.overloaded <- tally.overloaded + 1
      | _ -> tally.errors <- tally.errors + 1)
    stream;
  let duration = Unix.gettimeofday () -. t0 in
  output_string oc "quit\n";
  flush oc;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (duration, latency, tally, None, None)

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)

let report ~out ~requests ~jobs ~config ~duration ~latency ~tally ~cache_stats ~keyer_stats
    ~stages ~sweep =
  let ms x = x *. 1000. in
  let p q = ms (Quantile.quantile latency q) in
  let completed = Quantile.count latency in
  let rps = if duration > 0. then float_of_int completed /. duration else 0. in
  let hit_rate hits misses =
    let total = hits + misses in
    if total = 0 then 0. else float_of_int hits /. float_of_int total
  in
  Format.printf "requests      %d (%d completed, %d overloaded)@." requests completed
    tally.overloaded;
  Format.printf "duration      %.3fs  (%.0f requests/s)@." duration rps;
  Format.printf "latency (ms)  p50=%.3f p95=%.3f p99=%.3f max=%.3f@." (p 0.50) (p 0.95)
    (p 0.99)
    (ms (Quantile.max_value latency));
  List.iter
    (fun (stage, q) ->
      Format.printf "stage %-13s p50=%.3f p95=%.3f p99=%.3f max=%.3f@."
        (stage ^ " (ms)")
        (ms (Quantile.quantile q 0.50))
        (ms (Quantile.quantile q 0.95))
        (ms (Quantile.quantile q 0.99))
        (ms (Quantile.max_value q)))
    stages;
  Format.printf "verdicts      admitted=%d rejected=%d undecided=%d info=%d dropped=%d \
                 errors=%d@."
    tally.admitted tally.rejected tally.undecided tally.info tally.dropped tally.errors;
  (match cache_stats with
  | None -> Format.printf "cache         off or remote@."
  | Some { Cache.hits; misses; evictions; size } ->
      Format.printf "cache         hits=%d misses=%d evictions=%d size=%d hit_rate=%.3f@."
        hits misses evictions size (hit_rate hits misses));
  (match keyer_stats with
  | None -> ()
  | Some { Cache.Keyer.reused; rendered } ->
      Format.printf "keyer         reused=%d rendered=%d@." reused rendered);
  List.iter
    (fun (capacity, { Cache.hits; misses; evictions; _ }) ->
      Format.printf "sweep cap=%-6d hits=%d misses=%d evictions=%d hit_rate=%.3f@." capacity
        hits misses evictions (hit_rate hits misses))
    sweep;
  match out with
  | None -> ()
  | Some path ->
      let cache_json =
        match cache_stats with
        | None -> Json.Null
        | Some { Cache.hits; misses; evictions; size } ->
            Json.Obj
              [
                ("hits", Json.Num (float_of_int hits));
                ("misses", Json.Num (float_of_int misses));
                ("evictions", Json.Num (float_of_int evictions));
                ("size", Json.Num (float_of_int size));
                ("hit_rate", Json.Num (hit_rate hits misses));
              ]
      in
      let record =
        Json.Obj
          [
            ("requests", Json.Num (float_of_int requests));
            ("completed", Json.Num (float_of_int completed));
            ("overloaded", Json.Num (float_of_int tally.overloaded));
            ("duration_s", Json.Num duration);
            ("requests_per_sec", Json.Num rps);
            ( "latency_ms",
              Json.Obj
                [
                  ("p50", Json.Num (p 0.50));
                  ("p95", Json.Num (p 0.95));
                  ("p99", Json.Num (p 0.99));
                  ("max", Json.Num (ms (Quantile.max_value latency)));
                ] );
            ( "stage_latency_ms",
              Json.Obj
                (List.map
                   (fun (stage, q) ->
                     ( stage,
                       Json.Obj
                         [
                           ("p50", Json.Num (ms (Quantile.quantile q 0.50)));
                           ("p95", Json.Num (ms (Quantile.quantile q 0.95)));
                           ("p99", Json.Num (ms (Quantile.quantile q 0.99)));
                           ("max", Json.Num (ms (Quantile.max_value q)));
                           ("count", Json.int (Quantile.count q));
                         ] ))
                   stages) );
            ( "verdicts",
              Json.Obj
                [
                  ("admitted", Json.Num (float_of_int tally.admitted));
                  ("rejected", Json.Num (float_of_int tally.rejected));
                  ("undecided", Json.Num (float_of_int tally.undecided));
                  ("info", Json.Num (float_of_int tally.info));
                  ("dropped", Json.Num (float_of_int tally.dropped));
                  ("errors", Json.Num (float_of_int tally.errors));
                ] );
            ("cache", cache_json);
            ( "keyer",
              match keyer_stats with
              | None -> Json.Null
              | Some { Cache.Keyer.reused; rendered } ->
                  Json.Obj
                    [
                      ("reused", Json.Num (float_of_int reused));
                      ("rendered", Json.Num (float_of_int rendered));
                    ] );
            ( "cache_sweep",
              Json.List
                (List.map
                   (fun (capacity, { Cache.hits; misses; evictions; _ }) ->
                     Json.Obj
                       [
                         ("capacity", Json.Num (float_of_int capacity));
                         ("hits", Json.Num (float_of_int hits));
                         ("misses", Json.Num (float_of_int misses));
                         ("evictions", Json.Num (float_of_int evictions));
                         ("hit_rate", Json.Num (hit_rate hits misses));
                       ])
                   sweep) );
            ( "config",
              Json.Obj
                [
                  ("jobs", Json.Num (float_of_int jobs));
                  ("batch", Json.Num (float_of_int config.Batcher.batch));
                  ("queue", Json.Num (float_of_int config.Batcher.queue_capacity));
                  ("cache_capacity", Json.Num (float_of_int config.Batcher.cache_capacity));
                ] );
          ]
      in
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Json.to_string record);
          output_char oc '\n');
      Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)

let requests_arg =
  let doc = "Number of requests in the stream." in
  Arg.(value & opt int 1000 & info [ "requests" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Stream seed: the request sequence is a pure function of it." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let rate_arg =
  let doc =
    "Open-loop arrival rate in requests/second (exponential inter-arrivals); 0 replays as \
     fast as possible."
  in
  Arg.(value & opt float 0. & info [ "rate" ] ~docv:"R" ~doc)

let jobs_arg =
  let doc = "Worker domains for the in-process engine's batch solves." in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let batch_arg =
  let doc = "Batch size of the in-process engine." in
  Arg.(value & opt int Batcher.default_config.Batcher.batch & info [ "batch" ] ~docv:"N" ~doc)

let queue_arg =
  let doc = "Queue bound of the in-process engine." in
  Arg.(value & opt int Batcher.default_config.Batcher.queue_capacity
       & info [ "queue" ] ~docv:"N" ~doc)

let cache_arg =
  let doc = "Solver-cache capacity of the in-process engine (0 = off)." in
  Arg.(value & opt int Batcher.default_config.Batcher.cache_capacity
       & info [ "cache"; "cache-capacity" ] ~docv:"N" ~doc)

let sweep_arg =
  let doc =
    "Replay the same stream once per capacity in the comma-separated list and record each \
     run's cache statistics alongside the main run (in-process only)."
  in
  Arg.(value & opt (some (list int)) None & info [ "cache-sweep" ] ~docv:"N,N,..." ~doc)

let connect_arg =
  let doc = "Replay over TCP against a running e2e-serve at $(docv) instead of in-process." in
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT" ~doc)

let out_arg =
  let doc = "Write the run summary as one JSON object to $(docv)." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Write one JSONL request-trace record per pipeline stage per request to $(docv) \
     (analyse with e2e-trace; in-process replay only)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let det_clock_arg =
  let doc =
    "Replace the wall clock with a deterministic counter (one tick of 1/1024 s per \
     reading): timings stop measuring real time but the trace, the latency report and the \
     stage percentiles become exact functions of the request stream — byte-identical at \
     every -j.  Implies --rate 0 semantics for timing."
  in
  Arg.(value & flag & info [ "det-clock" ] ~doc)

(* Stage sketches accumulated by Rtrace.finish during the main run, in
   pipeline order, with the end-to-end sketch last.  Captured before the
   sweep replays so their observations don't pollute the report. *)
let capture_stages () =
  let sk = Obs.sketches () in
  let find name = List.assoc_opt name sk in
  List.filter_map
    (fun stage -> Option.map (fun q -> (stage, q)) (find ("serve.stage." ^ stage)))
    (Array.to_list Rtrace.stages)
  @ (match find "serve.e2e" with Some q -> [ ("e2e", q) ] | None -> [])

let run requests seed rate jobs batch queue cache sweep connect out trace det_clock =
  let jobs = Pool.resolve_jobs jobs in
  let stream = gen_stream ~seed ~requests in
  let config =
    { Batcher.queue_capacity = queue; batch; budget = Admission.Unbounded; jobs;
      cache_capacity = cache }
  in
  if det_clock then begin
    (* Dyadic step: every reading is an exact float, so durations and
       their sums are exact and the trace is byte-reproducible. *)
    let k = ref 0 in
    Obs.Clock.set_source (fun () ->
        incr k;
        float_of_int !k *. (1. /. 1024.))
  end;
  (* Stats are always on in-process: the stage histograms are the point
     of the exercise and cost a few clock reads per request. *)
  if connect = None then begin
    Obs.set_stats true;
    Obs.reset_metrics ()
  end;
  let trace_oc =
    match (trace, connect) with
    | Some path, None ->
        let oc = Out_channel.open_text path in
        Rtrace.set_writer
          (Some
             (fun line ->
               Out_channel.output_string oc line;
               Out_channel.output_char oc '\n'));
        Some (path, oc)
    | Some _, Some _ ->
        prerr_endline "e2e-loadgen: --trace requires the in-process engine (no --connect)";
        exit 2
    | None, _ -> None
  in
  let duration, latency, tally, cache_stats, keyer_stats =
    match connect with
    | None -> run_inproc ~stream ~config ~rate
    | Some addr -> run_tcp ~stream ~addr
  in
  (match trace_oc with
  | None -> ()
  | Some (path, oc) ->
      Rtrace.set_writer None;
      Out_channel.close oc;
      Format.printf "wrote %s@." path);
  let stages = capture_stages () in
  let sweep =
    match (sweep, connect) with
    | None, _ | _, Some _ -> []
    | Some capacities, None ->
        List.filter_map
          (fun capacity ->
            let config = { config with Batcher.cache_capacity = capacity } in
            let _, _, _, stats, _ = run_inproc ~stream ~config ~rate:0. in
            Option.map (fun s -> (capacity, s)) stats)
          capacities
  in
  report ~out ~requests ~jobs ~config ~duration ~latency ~tally ~cache_stats ~keyer_stats
    ~stages ~sweep

let () =
  let doc = "Open-loop load generator for the e2e-serve admission service" in
  let info = Cmd.info "e2e-loadgen" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      const run $ requests_arg $ seed_arg $ rate_arg $ jobs_arg $ batch_arg $ queue_arg
      $ cache_arg $ sweep_arg $ connect_arg $ out_arg $ trace_arg $ det_clock_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
