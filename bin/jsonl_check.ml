(* Validate a JSONL file: every line must parse as a JSON value, and the
   file must contain at least one record.  Used by `make check` to verify
   the metrics files the experiment drivers emit.

   With --trace the file is additionally validated as a request-trace
   stream (e2e-loadgen/e2e-serve --trace): every trace record must carry
   a request id, a known stage, a non-negative duration, and appear in
   canonical stage order with per-request stage durations tiling the
   end-to-end latency; every opened request must reach its "done"
   record.

   Usage: jsonl_check [--trace] FILE...
   (exit 0 iff every file is well-formed) *)

module Schema = E2e_serve.Rtrace.Schema

let check_file ~trace path =
  let ic = open_in path in
  let records = ref 0 in
  let trace_records = ref 0 in
  let bad = ref 0 in
  let line_no = ref 0 in
  let v = Schema.validator () in
  let complain msg = incr bad; Printf.eprintf "%s:%d: %s\n" path !line_no msg in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       if String.trim line <> "" then begin
         incr records;
         match E2e_obs.Json.of_string line with
         | Error msg -> complain ("invalid JSON: " ^ msg)
         | Ok json ->
             if trace then begin
               match Schema.of_json json with
               | Error msg -> complain msg
               | Ok None -> ()
               | Ok (Some r) -> (
                   incr trace_records;
                   match Schema.feed v r with
                   | Ok () -> ()
                   | Error msg -> complain msg)
             end
       end
     done
   with End_of_file -> ());
  close_in ic;
  if trace then begin
    (match Schema.check_closed v with
    | Ok () -> ()
    | Error msg ->
        incr bad;
        Printf.eprintf "%s: %s\n" path msg);
    if !trace_records = 0 then begin
      incr bad;
      Printf.eprintf "%s: no request-trace records\n" path
    end
  end;
  if !records = 0 then begin
    Printf.eprintf "%s: no JSON records\n" path;
    false
  end
  else if !bad > 0 then false
  else begin
    if trace then
      Printf.printf "%s: %d well-formed JSONL records, %d traced requests\n" path
        !records (Schema.completed v)
    else
      Printf.printf "%s: %d well-formed JSONL record%s\n" path !records
        (if !records = 1 then "" else "s");
    true
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let trace = List.mem "--trace" args in
  let files = List.filter (fun a -> a <> "--trace") args in
  if files = [] then begin
    prerr_endline "usage: jsonl_check [--trace] FILE...";
    exit 2
  end;
  let ok = List.fold_left (fun acc f -> check_file ~trace f && acc) true files in
  exit (if ok then 0 else 1)
