(* Validate a JSONL file: every line must parse as a JSON value, and the
   file must contain at least one record.  Used by `make check` to verify
   the metrics files the experiment drivers emit.

   Usage: jsonl_check FILE...   (exit 0 iff every file is well-formed) *)

let check_file path =
  let ic = open_in path in
  let records = ref 0 in
  let bad = ref 0 in
  let line_no = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       if String.trim line <> "" then begin
         incr records;
         match E2e_obs.Json.of_string line with
         | Ok _ -> ()
         | Error msg ->
             incr bad;
             Printf.eprintf "%s:%d: invalid JSON: %s\n" path !line_no msg
       end
     done
   with End_of_file -> ());
  close_in ic;
  if !records = 0 then begin
    Printf.eprintf "%s: no JSON records\n" path;
    false
  end
  else if !bad > 0 then false
  else begin
    Printf.printf "%s: %d well-formed JSONL record%s\n" path !records
      (if !records = 1 then "" else "s");
    true
  end

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: jsonl_check FILE...";
    exit 2
  end;
  let ok = List.fold_left (fun acc f -> check_file f && acc) true files in
  exit (if ok then 0 else 1)
