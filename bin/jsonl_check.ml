(* Validate a JSONL file: every line must parse as a JSON value, and the
   file must contain at least one record.  Used by `make check` to verify
   the metrics files the experiment drivers emit.

   With --trace the file is additionally validated as a request-trace
   stream (e2e-loadgen/e2e-serve --trace): every trace record must carry
   a request id, a known stage, a non-negative duration, and appear in
   canonical stage order with per-request stage durations tiling the
   end-to-end latency; every opened request must reach its "done"
   record.

   With --bench-cluster each record is validated as an e2e-loadgen
   cluster benchmark record: a workload header, a (possibly empty)
   shard-scaling "points" array and an "upstream_sweep" array, at least
   one of them non-empty, every point carrying non-negative throughput
   and latency figures (and a positive lane count in the upstream
   sweep).

   Usage: jsonl_check [--trace|--bench-cluster] FILE...
   (exit 0 iff every file is well-formed) *)

module Schema = E2e_serve.Rtrace.Schema
module Json = E2e_obs.Json

(* --bench-cluster: structural checks over one benchmark record. *)

let num_field ?(min = 0.) obj name =
  match Json.member name obj with
  | Some (Json.Num v) when v >= min -> Ok v
  | Some (Json.Num v) -> Error (Printf.sprintf "%s = %g out of range" name v)
  | Some _ -> Error (Printf.sprintf "%s is not a number" name)
  | None -> Error (Printf.sprintf "missing field %s" name)

let check_point ~lanes complain obj =
  let field ?min name = match num_field ?min obj name with
    | Ok _ -> ()
    | Error msg -> complain msg
  in
  if lanes then field ~min:1. "upstream_conns";
  field ~min:1. "shards";
  field "completed";
  field "duration_s";
  field "requests_per_sec";
  field "latency_p50_ms";
  field "latency_p99_ms"

let check_bench_cluster complain json =
  (match Json.member "workload" json with
  | Some (Json.Obj _ as w) ->
      (match Json.member "type" w with
      | Some (Json.Str _) -> ()
      | _ -> complain "workload.type missing or not a string");
      List.iter
        (fun name ->
          match num_field ~min:1. w name with
          | Ok _ -> ()
          | Error msg -> complain ("workload." ^ msg))
        [ "requests"; "connections"; "pipeline" ]
  | Some _ -> complain "workload is not an object"
  | None -> complain "missing field workload");
  let points kind lanes =
    match Json.member kind json with
    | Some (Json.List l) ->
        List.iter
          (function
            | Json.Obj _ as p -> check_point ~lanes (fun m -> complain (kind ^ ": " ^ m)) p
            | _ -> complain (kind ^ ": point is not an object"))
          l;
        List.length l
    | Some _ -> complain (kind ^ " is not an array"); 0
    | None -> complain ("missing field " ^ kind); 0
  in
  let n_points = points "points" false in
  let n_upstream = points "upstream_sweep" true in
  if n_points = 0 && n_upstream = 0 then
    complain "both points and upstream_sweep are empty";
  match Json.member "scaling" json with
  | None | Some Json.Null -> ()
  | Some (Json.Obj _ as s) -> (
      match num_field s "rps_ratio" with
      | Ok _ -> ()
      | Error msg -> complain ("scaling." ^ msg))
  | Some _ -> complain "scaling is neither null nor an object"

let check_file ~trace ~bench_cluster path =
  let ic = open_in path in
  let records = ref 0 in
  let trace_records = ref 0 in
  let bad = ref 0 in
  let line_no = ref 0 in
  let v = Schema.validator () in
  let complain msg = incr bad; Printf.eprintf "%s:%d: %s\n" path !line_no msg in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       if String.trim line <> "" then begin
         incr records;
         match E2e_obs.Json.of_string line with
         | Error msg -> complain ("invalid JSON: " ^ msg)
         | Ok json ->
             if bench_cluster then check_bench_cluster complain json;
             if trace then begin
               match Schema.of_json json with
               | Error msg -> complain msg
               | Ok None -> ()
               | Ok (Some r) -> (
                   incr trace_records;
                   match Schema.feed v r with
                   | Ok () -> ()
                   | Error msg -> complain msg)
             end
       end
     done
   with End_of_file -> ());
  close_in ic;
  if trace then begin
    (match Schema.check_closed v with
    | Ok () -> ()
    | Error msg ->
        incr bad;
        Printf.eprintf "%s: %s\n" path msg);
    if !trace_records = 0 then begin
      incr bad;
      Printf.eprintf "%s: no request-trace records\n" path
    end
  end;
  if !records = 0 then begin
    Printf.eprintf "%s: no JSON records\n" path;
    false
  end
  else if !bad > 0 then false
  else begin
    if trace then
      Printf.printf "%s: %d well-formed JSONL records, %d traced requests\n" path
        !records (Schema.completed v)
    else
      Printf.printf "%s: %d well-formed JSONL record%s\n" path !records
        (if !records = 1 then "" else "s");
    true
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let trace = List.mem "--trace" args in
  let bench_cluster = List.mem "--bench-cluster" args in
  let files = List.filter (fun a -> a <> "--trace" && a <> "--bench-cluster") args in
  if files = [] then begin
    prerr_endline "usage: jsonl_check [--trace|--bench-cluster] FILE...";
    exit 2
  end;
  let ok =
    List.fold_left (fun acc f -> check_file ~trace ~bench_cluster f && acc) true files
  in
  exit (if ok then 0 else 1)
