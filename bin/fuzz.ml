(* Differential fuzzing front end.

   e2e-fuzz --class eedf --trials 2000 --seed 1 -j 4
   e2e-fuzz --class all --trials 200 --corpus test/corpus

   Each trial generates a random instance of the class, runs the paper's
   algorithm against its exhaustive oracle and the independent checker,
   and shrinks any disagreement to a minimal reproducer.  Output is
   byte-identical for every -j/--jobs value; the exit status is nonzero
   when any disagreement survives. *)

open Cmdliner
module Fuzz = E2e_fuzz.Fuzz
module Gen = E2e_fuzz.Gen
module Serve_fuzz = E2e_fuzz.Serve_fuzz
module Pool = E2e_exec.Pool
module Obs = E2e_obs.Obs
module Json = E2e_obs.Json

(* Model classes check one solver against its oracle on one instance;
   the serve class checks the whole admission service (batching + cache)
   against its sequential reference on one request log. *)
type cls = Model of Gen.model_class | Serve

let all_classes = List.map (fun c -> Model c) Gen.all @ [ Serve ]

let classes_arg =
  let classes_conv =
    Arg.enum
      (("all", all_classes) :: ("serve", [ Serve ])
      :: List.map (fun c -> (Gen.name c, [ Model c ])) Gen.all)
  in
  let doc =
    "Model class to fuzz: $(b,eedf) (identical-length flow shops), $(b,r) (single-loop \
     recurrence shops), $(b,a) (homogeneous sets), $(b,h) (arbitrary sets), $(b,eedf-fast) \
     (indexed single-machine engine vs the retained scan-based reference, large instances), \
     $(b,eedf-inc) (incremental add/drop re-solves vs from-scratch after every edit), \
     $(b,serve) (admission-service request logs, batched-and-cached vs sequential \
     reference), or $(b,all)."
  in
  Arg.(value & opt classes_conv all_classes & info [ "class" ] ~docv:"CLASS" ~doc)

let trials_arg =
  let doc = "Random instances per model class." in
  Arg.(value & opt int 2000 & info [ "trials" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Campaign seed; trial $(i,t) of a class draws from the stream (seed, class, t)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains the trials fan out over.  Defaults to $(b,E2E_JOBS) (capped at the \
     runtime's recommended domain count) or 1.  Results are byte-identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let corpus_arg =
  let doc =
    "Write every shrunk reproducer into $(docv) (created if missing) in the task-set text \
     format, named $(i,class-digest.txt); the test suite replays this directory."
  in
  Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc)

let max_shrink_arg =
  let doc = "Cap on accepted shrink steps per finding." in
  Arg.(value & opt int 10_000 & info [ "max-shrink" ] ~docv:"N" ~doc)

let metrics_arg =
  let doc =
    "Write one JSON object to $(docv) with every telemetry counter, gauge and histogram of \
     the campaign (trials, agreements, skips, disagreements, shrink steps, solver \
     internals)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let run classes trials seed jobs corpus max_shrink metrics =
  let jobs = Pool.resolve_jobs jobs in
  if metrics <> None then begin
    Obs.set_stats true;
    Obs.reset_metrics ()
  end;
  let model_classes = List.filter_map (function Model c -> Some c | Serve -> None) classes in
  let reports = Fuzz.run ~jobs ~max_shrink ~seed ~trials model_classes in
  List.iter (fun r -> Format.printf "%a@." Fuzz.pp_report r) reports;
  let serve_report =
    if List.mem Serve classes then begin
      let r = Serve_fuzz.run ~jobs ~max_shrink ~seed ~trials () in
      Format.printf "%a@." Serve_fuzz.pp_report r;
      Some r
    end
    else None
  in
  (match corpus with
  | None -> ()
  | Some dir ->
      List.iter
        (fun (r : Fuzz.report) ->
          List.iter
            (fun (f : Fuzz.finding) ->
              let provenance =
                Printf.sprintf "seed=%d trial=%d shrink_steps=%d" seed f.Fuzz.trial
                  f.Fuzz.shrink_steps
              in
              let path = Fuzz.write_corpus ~dir ~cls:r.Fuzz.cls ~provenance f.Fuzz.shrunk in
              Format.printf "wrote %s@." path)
            r.Fuzz.findings)
        reports);
  (match metrics with
  | None -> ()
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Json.to_string (Obs.metrics_json ()));
          output_char oc '\n');
      Obs.set_stats false);
  let bugs =
    Fuzz.total_findings reports
    + match serve_report with
      | None -> 0
      | Some r -> List.length r.Serve_fuzz.findings
  in
  Format.printf "total: %d class(es), %d trials each, %d disagreement(s)@."
    (List.length classes) trials bugs;
  if bugs > 0 then exit 1

let () =
  let doc = "Differential fuzzing of the schedulers against their exhaustive oracles" in
  let info = Cmd.info "e2e-fuzz" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      const run $ classes_arg $ trials_arg $ seed_arg $ jobs_arg $ corpus_arg $ max_shrink_arg
      $ metrics_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
