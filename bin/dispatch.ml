(* Cluster dispatcher front end.

   e2e-dispatch --port 7070 --shards 127.0.0.1:7071,127.0.0.1:7072

   Clients speak the ordinary e2e-serve/1 line protocol to the
   dispatcher; requests are routed to shards by a deterministic hash
   of the shop name (all requests for a shop land on the same shard),
   and a status checker fails shop traffic over to the next live shard
   when one dies.  Shards may also join at runtime with
   `e2e-serve --tcp PORT --register DISPATCHER` (the ctl/1 control
   protocol). *)

open Cmdliner
module Dispatcher = E2e_cluster.Dispatcher
module Registry = E2e_cluster.Registry

let port_arg =
  let doc = "Port to serve clients on ($(b,0) binds an ephemeral port)." in
  Arg.(required & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let host_arg =
  let doc = "Address or hostname to bind the listener to." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)

let shards_arg =
  let doc =
    "Comma-separated static shard addresses (host:port,...).  More shards may register \
     dynamically over ctl/1."
  in
  Arg.(value & opt string "" & info [ "shards" ] ~docv:"ADDRS" ~doc)

let probe_interval_arg =
  let doc = "Seconds between status-checker probe rounds." in
  Arg.(value & opt float 1.0 & info [ "probe-interval" ] ~docv:"SECS" ~doc)

let probe_timeout_arg =
  let doc = "Bound in seconds on shard probes, upstream connects and metrics RPCs." in
  Arg.(value & opt float 1.0 & info [ "probe-timeout" ] ~docv:"SECS" ~doc)

let fail_threshold_arg =
  let doc = "Consecutive failed probes before a shard is marked dead." in
  Arg.(value & opt int 3 & info [ "fail-threshold" ] ~docv:"K" ~doc)

let accept_pool_arg =
  let doc = "Reader domains in the accept pool — the number of simultaneous clients." in
  Arg.(value & opt int 4 & info [ "accept-pool" ] ~docv:"N" ~doc)

let window_arg =
  let doc = "Pipelined replies buffered per client connection before its reader blocks." in
  Arg.(value & opt int 64 & info [ "window" ] ~docv:"N" ~doc)

let max_conns_arg =
  let doc = "Stop after $(docv) total client connections (for scripted runs)." in
  Arg.(value & opt (some int) None & info [ "max-connections" ] ~docv:"N" ~doc)

let upstream_conns_arg =
  let doc =
    "Pipelined upstream connections (lanes) per shard.  Each client connection keeps a \
     sticky lane per shard, so per-client reply order is preserved at any value."
  in
  Arg.(value & opt int 1 & info [ "upstream-conns" ] ~docv:"K" ~doc)

let parse_shards s =
  if String.trim s = "" then Ok []
  else
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun a -> a <> "")
    |> List.fold_left
         (fun acc a ->
           match (acc, Registry.parse_id a) with
           | Error _, _ -> acc
           | Ok _, None -> Error a
           | Ok l, Some hp -> Ok (hp :: l))
         (Ok [])
    |> Result.map List.rev

let run port host shards probe_interval probe_timeout fail_threshold accept_pool window
    max_conns upstream_conns =
  if upstream_conns < 1 then begin
    prerr_endline "e2e-dispatch: --upstream-conns must be >= 1";
    exit 2
  end;
  match parse_shards shards with
  | Error bad ->
      Printf.eprintf "e2e-dispatch: bad shard address %S (want host:port)\n%!" bad;
      exit 2
  | Ok shards ->
      let config =
        { Dispatcher.fail_threshold; probe_interval; probe_timeout;
          vnodes = Registry.default_vnodes; upstream_conns }
      in
      let t = Dispatcher.create ~config shards in
      Dispatcher.serve ~host ?max_connections:max_conns ~accept_pool ~window
        ~ready:(fun p ->
          Printf.eprintf "e2e-dispatch: listening on %s:%d (%d shard%s)\n%!" host p
            (List.length shards)
            (if List.length shards = 1 then "" else "s"))
        ~port t

let () =
  let doc = "Sharded front end for the e2e-serve admission service" in
  let info = Cmd.info "e2e-dispatch" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      const run $ port_arg $ host_arg $ shards_arg $ probe_interval_arg $ probe_timeout_arg
      $ fail_threshold_arg $ accept_pool_arg $ window_arg $ max_conns_arg
      $ upstream_conns_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
