(* Schedule a task set from a file.

   e2e-sched schedule tasks.txt            # pick the strongest algorithm
   e2e-sched schedule -a h tasks.txt       # force Algorithm H
   e2e-sched check tasks.txt               # classify and report
   e2e-sched example > tasks.txt           # emit a template

   File format: see E2e_model.Instance_io. *)

open Cmdliner
module Rat = E2e_rat.Rat
module Flow_shop = E2e_model.Flow_shop
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Instance_io = E2e_model.Instance_io
module Schedule = E2e_schedule.Schedule
module Solver = E2e_core.Solver
module Obs = E2e_obs.Obs

let load path =
  match Instance_io.parse_file path with
  | Ok shop -> Ok shop
  | Error msg -> Error (`Msg (Printf.sprintf "%s: %s" path msg))

let print_schedule ~gantt s =
  Format.printf "%a@." Schedule.pp_table s;
  if gantt then Format.printf "@.Gantt:@.%a@." (Schedule.pp_gantt ?unit_time:None) s

let classify_to_string shop =
  if not (Visit.is_traditional shop.Recurrence_shop.visit) then "flow shop with recurrence"
  else
    let fs = Flow_shop.make ~processors:shop.Recurrence_shop.visit.Visit.processors
               shop.Recurrence_shop.tasks in
    match Flow_shop.classify fs with
    | `Identical_length tau -> Printf.sprintf "identical-length (tau = %s)" (Rat.to_string tau)
    | `Homogeneous _ -> "homogeneous"
    | `Arbitrary -> "arbitrary"

(* Telemetry flags for the schedule command.  No flag, no sink: the
   solvers run exactly as before, and output is unchanged. *)
let trace_arg =
  let doc =
    "Write a telemetry trace of the run to $(docv): solver-phase spans, per-task \
     decision events (effective deadlines, forbidden regions, bottleneck choices, \
     inflation and compaction deltas) and counter updates.  The format is chosen \
     with $(b,--trace-format)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Trace format: $(b,jsonl) writes one self-describing JSON object per event \
     per line; $(b,chrome) writes Chrome trace_event JSON that Perfetto \
     (ui.perfetto.dev) and chrome://tracing open as a timeline."
  in
  Arg.(
    value
    & opt (Arg.enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT" ~doc)

let stats_arg =
  let doc =
    "After the run, print every telemetry counter, gauge and histogram \
     (dispatches, forbidden regions, solver verdicts, ...)."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

(* Install the requested sink and stats registry around [f], tearing both
   down (and flushing the trace file) even if [f] raises. *)
let with_telemetry ~trace ~trace_format ~stats f =
  match
    match trace with
    | None -> Ok ()
    | Some path -> (
        match open_out path with
        | oc ->
            Obs.install
              (match trace_format with
              | `Jsonl -> Obs.Sink.jsonl oc
              | `Chrome -> Obs.Sink.chrome oc);
            Ok ()
        | exception Sys_error msg -> Error (`Msg ("cannot open trace file: " ^ msg)))
  with
  | Error _ as e -> e
  | Ok () ->
      if stats then begin
        Obs.set_stats true;
        Obs.reset_metrics ()
      end;
      Fun.protect
        ~finally:(fun () ->
          Obs.uninstall ();
          if stats then begin
            Format.printf "@.%a@." Obs.pp_metrics ();
            Obs.set_stats false
          end)
        f

let schedule_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let gantt = Arg.(value & flag & info [ "gantt"; "g" ] ~doc:"Also print an ASCII Gantt chart.") in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Print the schedule as CSV and nothing else.") in
  let algo =
    let parse =
      Arg.enum
        [
          ("auto", `Auto); ("eedf", `Eedf); ("a", `A); ("h", `H); ("r", `R);
          ("portfolio", `Portfolio); ("localsearch", `Local_search); ("exact", `Exact);
          ("greedy", `Greedy);
        ]
    in
    Arg.(value & opt parse `Auto & info [ "algorithm"; "a" ] ~docv:"ALGO"
           ~doc:"Algorithm: auto, eedf, a, h, portfolio, localsearch, exact (traditional \
                 shops), r or greedy (recurrence allowed).")
  in
  let run path gantt csv algo trace trace_format stats =
    match load path with
    | Error e -> Error e
    | Ok shop ->
        with_telemetry ~trace ~trace_format ~stats @@ fun () ->
        (
        let traditional () =
          if Visit.is_traditional shop.Recurrence_shop.visit then
            Ok (Flow_shop.make ~processors:shop.Recurrence_shop.visit.Visit.processors
                  shop.Recurrence_shop.tasks)
          else Error (`Msg "this algorithm needs a traditional (loop-free) visit sequence")
        in
        let report = function
          | Ok s ->
              if csv then print_string (Schedule.to_csv s)
              else begin
                print_schedule ~gantt s;
                Format.printf "@.feasible: %b@." (Schedule.is_feasible s)
              end;
              Ok ()
          | Error msg ->
              Format.printf "no schedule: %s@." msg;
              Ok ()
        in
        match algo with
        | `Auto ->
            if Visit.is_traditional shop.Recurrence_shop.visit then begin
              match traditional () with
              | Error e -> Error e
              | Ok fs -> (
                  match Solver.solve fs with
                  | Solver.Feasible (s, which) ->
                      Format.printf "algorithm: %s@.@."
                        (match which with
                        | `Eedf -> "EEDF (optimal)"
                        | `Algorithm_a -> "Algorithm A (optimal)"
                        | `Algorithm_h -> "Algorithm H (heuristic)");
                      report (Ok s)
                  | Solver.Proved_infeasible _ -> report (Error "proved infeasible")
                  | Solver.Heuristic_failed -> report (Error "Algorithm H failed (undecided)"))
            end
            else
              report
                (match E2e_core.Algo_r.schedule shop with
                | Ok s -> Ok s
                | Error e -> Error (Format.asprintf "%a" E2e_core.Algo_r.pp_error e))
        | `Eedf -> (
            match traditional () with
            | Error e -> Error e
            | Ok fs ->
                report
                  (match E2e_core.Eedf.schedule fs with
                  | Ok s -> Ok s
                  | Error `Infeasible -> Error "proved infeasible"
                  | Error `Not_identical_length -> Error "task set is not identical-length"))
        | `A -> (
            match traditional () with
            | Error e -> Error e
            | Ok fs ->
                report
                  (match E2e_core.Algo_a.schedule fs with
                  | Ok s -> Ok s
                  | Error `Infeasible -> Error "proved infeasible"
                  | Error `Not_homogeneous -> Error "task set is not homogeneous"))
        | `H -> (
            match traditional () with
            | Error e -> Error e
            | Ok fs ->
                report
                  (match E2e_core.Algo_h.schedule fs with
                  | Ok s -> Ok s
                  | Error f -> Error (Format.asprintf "%a" E2e_core.Algo_h.pp_failure f)))
        | `Portfolio -> (
            match traditional () with
            | Error e -> Error e
            | Ok fs ->
                report
                  (match E2e_core.H_portfolio.schedule fs with
                  | Ok (s, strategy) ->
                      if not csv then
                        Format.printf "strategy: %a@.@." E2e_core.H_portfolio.pp_strategy
                          strategy;
                      Ok s
                  | Error `All_failed -> Error "every portfolio strategy failed"))
        | `Local_search -> (
            match traditional () with
            | Error e -> Error e
            | Ok fs ->
                report
                  (match E2e_baselines.Local_search.schedule fs with
                  | Some s -> Ok s
                  | None -> Error "local search found no feasible permutation"))
        | `Exact -> (
            match traditional () with
            | Error e -> Error e
            | Ok fs ->
                report
                  (match E2e_baselines.Branch_bound.solve fs with
                  | E2e_baselines.Branch_bound.Feasible s -> Ok s
                  | E2e_baselines.Branch_bound.Infeasible -> Error "proved infeasible"
                  | E2e_baselines.Branch_bound.Unknown -> Error "search budget exhausted"))
        | `Greedy ->
            let s = E2e_core.Greedy_edf.schedule shop in
            report
              (if Schedule.is_feasible s then Ok s
               else Error "greedy dispatch misses a constraint")
        | `R ->
            report
              (match E2e_core.Algo_r.schedule shop with
              | Ok s -> Ok s
              | Error e -> Error (Format.asprintf "%a" E2e_core.Algo_r.pp_error e)))
  in
  let doc = "Find an end-to-end schedule for a task-set file." in
  Cmd.v
    (Cmd.info "schedule" ~doc)
    Term.(
      term_result
        (const run $ path $ gantt $ csv $ algo $ trace_arg $ trace_format_arg $ stats_arg))

let check_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run path =
    match load path with
    | Error e -> Error e
    | Ok shop ->
        Format.printf "%d tasks, %d stages, %d processors@." (Recurrence_shop.n_tasks shop)
          (Visit.length shop.Recurrence_shop.visit)
          shop.Recurrence_shop.visit.Visit.processors;
        Format.printf "class: %s@." (classify_to_string shop);
        Array.iter
          (fun (t : E2e_model.Task.t) ->
            Format.printf "  %a  slack %a@." E2e_model.Task.pp t Rat.pp (E2e_model.Task.slack t))
          shop.Recurrence_shop.tasks;
        Ok ()
  in
  let doc = "Parse, classify and summarise a task-set file." in
  Cmd.v (Cmd.info "check" ~doc) Term.(term_result (const run $ path))

let certify_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run path =
    match load path with
    | Error e -> Error e
    | Ok shop ->
        if not (Visit.is_traditional shop.Recurrence_shop.visit) then
          Error (`Msg "certificates apply to traditional (loop-free) task sets")
        else begin
          let fs =
            Flow_shop.make ~processors:shop.Recurrence_shop.visit.Visit.processors
              shop.Recurrence_shop.tasks
          in
          (match E2e_core.Infeasibility.check fs with
          | Some c ->
              Format.printf "INFEASIBLE: %a@." E2e_core.Infeasibility.pp_certificate c
          | None ->
              Format.printf
                "inconclusive: no polynomial certificate (the set may still be infeasible)@.");
          Ok ()
        end
  in
  let doc = "Look for a polynomial proof that no schedule can exist." in
  Cmd.v (Cmd.info "certify" ~doc) Term.(term_result (const run $ path))

let dot_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run path =
    match load path with
    | Error e -> Error e
    | Ok shop ->
        print_string (Visit.to_dot shop.Recurrence_shop.visit);
        Ok ()
  in
  let doc = "Print the visit graph in Graphviz DOT format." in
  Cmd.v (Cmd.info "dot" ~doc) Term.(term_result (const run $ path))

let example_cmd =
  let run () =
    print_string
      "# end-to-end task set: release deadline tau_1 ... tau_k\n\
       # optional 'visit' line gives the (1-based) processor of each stage\n\
       visit 1 2 3 2 4\n\
       task 0 8  1 1 1 1 1\n\
       task 0 9  1 1 1 1 1\n\
       task 0 11 1 1 1 1 1\n\
       task 0 14 1 1 1 1 1\n"
  in
  let doc = "Print a template task-set file." in
  Cmd.v (Cmd.info "example" ~doc) Term.(const run $ const ())

let () =
  let info =
    Cmd.info "e2e-sched" ~version:"1.0.0"
      ~doc:"End-to-end deadline scheduling for distributed flow shops"
  in
  exit (Cmd.eval (Cmd.group info [ schedule_cmd; check_cmd; certify_cmd; dot_cmd; example_cmd ]))
