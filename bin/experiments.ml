(* Command-line driver regenerating the paper's tables and figures.

   e2e-experiments all           # everything, in paper order
   e2e-experiments fig9a --trials 2000
   e2e-experiments fig9b -j 4    # trials fanned over 4 domains
   e2e-experiments table3        # the Figure-8 before/after example
   e2e-experiments all --metrics runs.jsonl   # plus one JSONL record each

   Monte Carlo trials use one PRNG stream per trial, so the output is
   byte-identical whatever -j/--jobs (or E2E_JOBS) says. *)

open Cmdliner
module E = E2e_experiments.Experiments
module Pool = E2e_exec.Pool
module Obs = E2e_obs.Obs
module Json = E2e_obs.Json

let ppf = Format.std_formatter

let trials =
  let doc = "Random instances per plotted point." in
  Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N" ~doc)

let seed =
  let doc = "PRNG seed for the randomized experiments." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs =
  let doc =
    "Worker domains for the Monte Carlo sweeps.  Defaults to $(b,E2E_JOBS) \
     (capped at the runtime's recommended domain count) or 1.  Results are \
     byte-identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let metrics =
  let doc =
    "Append one JSON object per artifact run to $(docv): the artifact name, its \
     wall-clock seconds, and every telemetry counter, gauge and histogram \
     accumulated while it ran (instances generated, feasible schedules found, \
     solver verdicts, simulator events, ...)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let override sweep trials seed =
  let sweep = match trials with Some t -> { sweep with E.trials = t } | None -> sweep in
  match seed with Some s -> { sweep with E.seed = s } | None -> sweep

let append_record path record =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  output_string oc (Json.to_string record);
  output_char oc '\n';
  close_out oc

(* Run one named artifact.  With [--metrics FILE], metrics are collected
   from a clean slate while it runs and appended to FILE as one JSONL
   record; without, this is exactly [f ppf]. *)
let run_artifact metrics name f =
  match metrics with
  | None -> f ppf
  | Some path ->
      Obs.set_stats true;
      Obs.reset_metrics ();
      let t0 = Obs.Clock.now () in
      Fun.protect ~finally:(fun () -> Obs.set_stats false) (fun () -> f ppf);
      let wall = Obs.Clock.now () -. t0 in
      let metric_fields =
        match Obs.metrics_json () with Json.Obj kvs -> kvs | j -> [ ("metrics", j) ]
      in
      append_record path
        (Json.Obj
           (("artifact", Json.Str name) :: ("wall_s", Json.Num wall) :: metric_fields))

let fixed name doc f =
  let run metrics = run_artifact metrics name f in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ metrics)

let swept name doc default f =
  let run trials seed jobs metrics =
    run_artifact metrics name (fun ppf ->
        f ~sweep:(override default trials seed) ~jobs:(Pool.resolve_jobs jobs) ppf)
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ trials $ seed $ jobs $ metrics)

(* Everything, in paper order — the same sequence as [E.all], but run
   artifact by artifact so [--metrics] gets one record per artifact, and
   with the --trials/--seed/-j overrides applied to every randomized
   one. *)
let all_artifacts ~trials ~seed ~jobs : (string * (Format.formatter -> unit)) list =
  [
    ("table1", E.table1);
    ("table2", E.table2);
    ("table3", E.table3);
    ("fig9a", fun ppf -> E.fig9a ~sweep:(override E.default_fig9a trials seed) ~jobs ppf);
    ("fig9b", fun ppf -> E.fig9b ~sweep:(override E.default_fig9b trials seed) ~jobs ppf);
    ("fig10", fun ppf -> E.fig10 ~sweep:(override E.default_fig10 trials seed) ~jobs ppf);
    ("table4", E.table4);
    ("table5", E.table5);
    ("section6", E.section6);
    ("nonpermutation", E.nonpermutation);
    ( "fig9x",
      fun ppf ->
        E.fig9_extensions
          ~sweep:(override { E.default_fig9b with E.trials = 300 } trials seed)
          ~jobs ppf );
    ("periodic-sweep", fun ppf -> E.periodic_sweep ?trials ?seed ~jobs ppf);
    ( "ablation",
      fun ppf ->
        E.ablation
          ~sweep:(override { E.seed = 7; trials = 300; n_tasks = 6; n_processors = 4 } trials seed)
          ~jobs ppf );
  ]

let all_cmd =
  let doc = "Regenerate every table and figure (DESIGN.md experiment index)." in
  let run trials seed jobs metrics =
    let jobs = Pool.resolve_jobs jobs in
    List.iter
      (fun (name, f) -> run_artifact metrics name f)
      (all_artifacts ~trials ~seed ~jobs)
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ trials $ seed $ jobs $ metrics)

let () =
  let info =
    Cmd.info "e2e-experiments" ~version:"1.0.0"
      ~doc:
        "Reproduction harness for Bettati & Liu, 'End-to-End Scheduling to Meet Deadlines in \
         Distributed Systems' (ICDCS 1992)"
  in
  let cmds =
    [
      fixed "table1" "Table 1 / Figure 3: Algorithm R worked example." E.table1;
      fixed "table2" "Table 2 / Figure 5: Algorithm A worked example." E.table2;
      fixed "table3" "Table 3 / Figure 8: Algorithm H before/after compaction." E.table3;
      swept "fig9a" "Figure 9(a): success rate, 4 tasks x 4 processors." E.default_fig9a
        (fun ~sweep ~jobs ppf -> E.fig9a ~sweep ~jobs ppf);
      swept "fig9b" "Figure 9(b): success rate, 6 tasks x 4 processors." E.default_fig9b
        (fun ~sweep ~jobs ppf -> E.fig9b ~sweep ~jobs ppf);
      swept "fig10" "Figure 10: success rate, 10 tasks x 4 processors." E.default_fig10
        (fun ~sweep ~jobs ppf -> E.fig10 ~sweep ~jobs ppf);
      fixed "table4" "Table 4: periodic phase postponement." E.table4;
      fixed "table5" "Table 5: postponed deadlines." E.table5;
      fixed "section6" "Section 6: processor sharing." E.section6;
      fixed "nonpermutation" "Witness: feasible only by a non-permutation schedule."
        E.nonpermutation;
      swept "fig9x" "Extension: every scheduler on the Figure 9(b) sweep."
        { E.default_fig9b with E.trials = 300 }
        (fun ~sweep ~jobs ppf -> E.fig9_extensions ~sweep ~jobs ppf);
      (let doc = "Extension: periodic schedulability curves." in
       let run trials seed jobs metrics =
         run_artifact metrics "periodic-sweep" (fun ppf ->
             E.periodic_sweep ?trials ?seed ~jobs:(Pool.resolve_jobs jobs) ppf)
       in
       Cmd.v (Cmd.info "periodic-sweep" ~doc) Term.(const run $ trials $ seed $ jobs $ metrics));
      swept "ablation" "Design-choice ablations."
        { E.seed = 7; trials = 300; n_tasks = 6; n_processors = 4 }
        (fun ~sweep ~jobs ppf -> E.ablation ~sweep ~jobs ppf);
      all_cmd;
    ]
  in
  exit (Cmd.eval (Cmd.group info cmds))
