module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Instance_io = E2e_model.Instance_io
open Helpers

let parse_ok text =
  match Instance_io.parse text with
  | Ok shop -> shop
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let parse_err text =
  match Instance_io.parse text with
  | Ok _ -> Alcotest.fail "parse should fail"
  | Error msg -> msg

let test_basic () =
  let shop = parse_ok "task 0 10 1 2 3\ntask 1 12 2 2 2\n" in
  Alcotest.(check int) "tasks" 2 (Recurrence_shop.n_tasks shop);
  Alcotest.(check bool) "traditional" true (Visit.is_traditional shop.Recurrence_shop.visit);
  check_rat "release" (r 1) shop.Recurrence_shop.tasks.(1).Task.release;
  check_rat "tau" (r 3) shop.Recurrence_shop.tasks.(0).Task.proc_times.(2)

let test_visit_directive () =
  let shop = parse_ok "visit 1 2 1\ntask 0 10 1 1 1\n" in
  Alcotest.(check int) "two processors" 2 shop.Recurrence_shop.visit.Visit.processors;
  Alcotest.(check int) "three stages" 3 (Visit.length shop.Recurrence_shop.visit)

let test_comments_and_whitespace () =
  let shop = parse_ok "# header\n\n  task 0 10 1 1  # trailing\n\ttask 0 12 1 1\n" in
  Alcotest.(check int) "tasks" 2 (Recurrence_shop.n_tasks shop)

let test_rational_literals () =
  let shop = parse_ok "task 0.5 10 3/2 2.25\n" in
  check_rat "decimal release" (Rat.make 1 2) shop.Recurrence_shop.tasks.(0).Task.release;
  check_rat "fraction tau" (Rat.make 3 2) shop.Recurrence_shop.tasks.(0).Task.proc_times.(0);
  check_rat "decimal tau" (Rat.make 9 4) shop.Recurrence_shop.tasks.(0).Task.proc_times.(1)

let test_errors () =
  let contains_line msg = Helpers.contains msg "line" in
  Alcotest.(check bool) "empty input" true (parse_err "" = "no task lines");
  Alcotest.(check bool) "bad directive has line" true (contains_line (parse_err "frobnicate\n"));
  Alcotest.(check bool) "bad number has line" true (contains_line (parse_err "task 0 x 1\n"));
  Alcotest.(check bool) "stage mismatch flagged" true
    (contains_line (parse_err "task 0 10 1 1\ntask 0 10 1\n"));
  Alcotest.(check bool) "visit length mismatch" true
    (Helpers.contains (parse_err "visit 1 2\ntask 0 10 1 1 1\n") "visit length");
  Alcotest.(check bool) "duplicate visit" true
    (contains_line (parse_err "visit 1 2\nvisit 1 2\ntask 0 9 1 1\n"))

let test_roundtrip_traditional () =
  let original = parse_ok "task 0 10 1 2 3\ntask 1/2 12 2 2 2\n" in
  let reparsed = parse_ok (Instance_io.to_string original) in
  Alcotest.(check bool) "round trip" true
    (Array.for_all2
       (fun (a : Task.t) (b : Task.t) ->
         Rat.equal a.release b.release && Rat.equal a.deadline b.deadline
         && Array.for_all2 Rat.equal a.proc_times b.proc_times)
       original.Recurrence_shop.tasks reparsed.Recurrence_shop.tasks)

let test_roundtrip_recurrent () =
  let original = parse_ok "visit 1 2 3 2 4\ntask 0 8 1 1 1 1 1\n" in
  let reparsed = parse_ok (Instance_io.to_string original) in
  Alcotest.(check bool) "visit preserved" true
    (original.Recurrence_shop.visit.Visit.sequence
    = reparsed.Recurrence_shop.visit.Visit.sequence)

(* Property: any instance the fuzzer can generate survives
   to_string/parse unchanged — both structurally and byte-for-byte on a
   second render. *)
let shop_equal (a : Recurrence_shop.t) (b : Recurrence_shop.t) =
  a.Recurrence_shop.visit.E2e_model.Visit.sequence
  = b.Recurrence_shop.visit.E2e_model.Visit.sequence
  && Array.length a.Recurrence_shop.tasks = Array.length b.Recurrence_shop.tasks
  && Array.for_all2
       (fun (x : Task.t) (y : Task.t) ->
         Rat.equal x.release y.release && Rat.equal x.deadline y.deadline
         && Array.for_all2 Rat.equal x.proc_times y.proc_times)
       a.Recurrence_shop.tasks b.Recurrence_shop.tasks

let test_roundtrip_fuzzed () =
  List.iter
    (fun cls ->
      for trial = 0 to 60 do
        let g = E2e_prng.Prng.of_path [| 7; E2e_fuzz.Gen.code cls; trial |] in
        let shop = E2e_fuzz.Gen.instance g cls in
        let text = Instance_io.to_string shop in
        let reparsed = parse_ok text in
        if not (shop_equal shop reparsed) then
          Alcotest.failf "%s trial %d: fields changed across round trip:\n%s"
            (E2e_fuzz.Gen.name cls) trial text;
        Alcotest.(check string)
          (Printf.sprintf "%s trial %d: render is a fixed point" (E2e_fuzz.Gen.name cls) trial)
          text
          (Instance_io.to_string reparsed)
      done)
    E2e_fuzz.Gen.all

let test_malformed_rationals () =
  List.iter
    (fun text ->
      match Instance_io.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "must reject %S" text)
    [
      "task 0 10 1/0\n" (* zero denominator *);
      "task 0 10 1//2\n" (* doubled slash *);
      "task 0 10 1/\n" (* missing denominator *);
      "task 0 10 /2\n" (* missing numerator *);
      "task 0 10 1.2.3\n" (* doubled point *);
      "task 0 10 --1\n" (* doubled sign *);
      "task 0 10 -1\n" (* negative processing time *);
      "task 0 10 1 -2\n" (* negative later stage *);
    ]

let test_malformed_structure () =
  List.iter
    (fun text ->
      match Instance_io.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "must reject %S" text)
    [
      "task 0 10\n" (* no stages at all *);
      "task 0\n" (* not even a deadline *);
      "visit 1 3\ntask 0 10 1 1\n" (* processor numbering with a gap *);
      "visit 0 1\ntask 0 10 1 1\n" (* processors are 1-based *);
      "visit 1 2\n" (* visit but no tasks *);
    ]

let test_deadline_before_release_rejected () =
  Alcotest.(check bool) "window validation propagates" true
    (match Instance_io.parse "task 5 3 1\n" with Error _ -> true | Ok _ -> false)

let test_parse_file () =
  let path = Filename.temp_file "e2e" ".txt" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "visit 1 2 1\ntask 0 9 1 1 1\n");
  (match Instance_io.parse_file path with
  | Ok shop -> Alcotest.(check int) "stages" 3 (Visit.length shop.Recurrence_shop.visit)
  | Error m -> Alcotest.failf "parse_file failed: %s" m);
  Sys.remove path;
  match Instance_io.parse_file "/nonexistent/e2e-tasks.txt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must error"

let suite =
  [
    Alcotest.test_case "parse_file" `Quick test_parse_file;
    Alcotest.test_case "basic" `Quick test_basic;
    Alcotest.test_case "visit directive" `Quick test_visit_directive;
    Alcotest.test_case "comments and whitespace" `Quick test_comments_and_whitespace;
    Alcotest.test_case "rational literals" `Quick test_rational_literals;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "round trip (traditional)" `Quick test_roundtrip_traditional;
    Alcotest.test_case "round trip (recurrent)" `Quick test_roundtrip_recurrent;
    Alcotest.test_case "round trip (fuzzed, all classes)" `Quick test_roundtrip_fuzzed;
    Alcotest.test_case "malformed rationals rejected" `Quick test_malformed_rationals;
    Alcotest.test_case "malformed structure rejected" `Quick test_malformed_structure;
    Alcotest.test_case "bad window rejected" `Quick test_deadline_before_release_rejected;
  ]
