let () =
  Alcotest.run "e2e_sched"
    [
      ("rat", Test_rat.suite);
      ("ds", Test_ds.suite);
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("model", Test_model.suite);
      ("schedule", Test_schedule.suite);
      ("single_machine", Test_single_machine.suite);
      ("eedf", Test_eedf.suite);
      ("algo_r", Test_algo_r.suite);
      ("algo_a", Test_algo_a.suite);
      ("algo_h", Test_algo_h.suite);
      ("baselines", Test_baselines.suite);
      ("workload", Test_workload.suite);
      ("periodic", Test_periodic.suite);
      ("sim", Test_sim.suite);
      ("partition", Test_partition.suite);
      ("instance_io", Test_instance_io.suite);
      ("experiments", Test_experiments.suite);
      ("extensions", Test_extensions.suite);
      ("branch_bound", Test_branch_bound.suite);
      ("periodic_random", Test_periodic_random.suite);
      ("preemptive", Test_preemptive.suite);
      ("distributed", Test_distributed.suite);
      ("local_search", Test_local_search.suite);
      ("misc", Test_misc_coverage.suite);
      ("obs", Test_obs.suite);
      ("quantile", Test_quantile.suite);
      ("exec", Test_exec.suite);
      ("fuzz", Test_fuzz.suite);
      ("serve", Test_serve.suite);
      ("trace", Test_trace.suite);
      ("cluster", Test_cluster.suite);
    ]
