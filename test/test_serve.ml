(* The admission service: canonical cache behaviour, batched
   determinism across domain counts, cache transparency, soundness of
   admitted schedules and rejection certificates, backpressure, the
   wire protocol, and the dispatcher replaying admitted schedules. *)

module Rat = E2e_rat.Rat
module Prng = E2e_prng.Prng
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Infeasibility = E2e_core.Infeasibility
module Feasible_gen = E2e_workload.Feasible_gen
module Dispatcher = E2e_sim.Dispatcher
module Admission = E2e_serve.Admission
module Batcher = E2e_serve.Batcher
module Cache = E2e_serve.Cache
module Protocol = E2e_serve.Protocol
module Server = E2e_serve.Server
module Stripes = E2e_serve.Stripes
module Serve_fuzz = E2e_fuzz.Serve_fuzz

(* ------------------------------------------------------------------ *)
(* Workload helpers                                                   *)

let gen_instance g =
  let n = 2 + Prng.int g 3 and m = 2 + Prng.int g 2 in
  Recurrence_shop.of_traditional
    (Feasible_gen.generate g
       { Feasible_gen.n_tasks = n; n_processors = m; mean_tau = 1.0; stdev = 0.5;
         slack_factor = 1.0 +. Prng.float g 1.0 })

let permute g (shop : Recurrence_shop.t) =
  let order = Prng.permutation g (Recurrence_shop.n_tasks shop) in
  let tasks =
    Array.mapi
      (fun p orig ->
        let t = shop.Recurrence_shop.tasks.(orig) in
        Task.make ~id:p ~release:t.release ~deadline:t.deadline ~proc_times:t.proc_times)
      order
  in
  Recurrence_shop.make ~visit:shop.visit tasks

(* Window strictly below total processing time: provably infeasible. *)
let infeasible_instance () =
  let tasks =
    [|
      Task.make ~id:0 ~release:Rat.zero ~deadline:Rat.one
        ~proc_times:[| Rat.one; Rat.one |];
    |]
  in
  Recurrence_shop.of_traditional (Flow_shop.make ~processors:2 tasks)

(* A mixed request log: submits, permuted resubmissions, adds, queries,
   drops — a pure function of the seed. *)
let gen_log seed requests =
  let g = Prng.of_path [| seed; 97; 0 |] in
  let live = ref [] and fresh = ref 0 in
  let fresh_shop () = incr fresh; Printf.sprintf "s%d" !fresh in
  let pick () =
    match !live with [] -> None | l -> Some (List.nth l (Prng.int g (List.length l)))
  in
  List.init requests (fun _ ->
      let p = Prng.float g 1.0 in
      if p < 0.40 || !live = [] then begin
        let shop = fresh_shop () and instance = gen_instance g in
        live := (shop, instance) :: !live;
        Admission.Submit { shop; instance }
      end
      else if p < 0.60 then begin
        let _, earlier = Option.get (pick ()) in
        let shop = fresh_shop () and instance = permute g earlier in
        live := (shop, instance) :: !live;
        Admission.Submit { shop; instance }
      end
      else if p < 0.80 then begin
        let shop, committed = Option.get (pick ()) in
        let k = Array.length committed.Recurrence_shop.tasks.(0).Task.proc_times in
        let taus = Array.make k Rat.one in
        let release = Prng.rat_uniform g ~den:10 Rat.zero (Rat.of_int 3) in
        Admission.Add
          { shop; tasks = [ (release, Rat.add release (Rat.of_int (3 * k)), taus) ] }
      end
      else if p < 0.92 then
        Admission.Query { shop = (match pick () with Some (s, _) -> s | None -> "none") }
      else begin
        let shop = match pick () with Some (s, _) -> s | None -> "none" in
        live := List.filter (fun (s, _) -> s <> shop) !live;
        Admission.Drop { shop }
      end)

let render_outcomes outcomes =
  String.concat "\n"
    (Array.to_list
       (Array.map (fun o -> Format.asprintf "%a" Batcher.pp_outcome o) outcomes))

let run_log ~jobs ~cache_capacity log =
  let config =
    { Batcher.queue_capacity = max 1 (List.length log); batch = 4;
      budget = Admission.Unbounded; jobs; cache_capacity }
  in
  let b = Batcher.create ~config () in
  (Batcher.process_log b log, b)

(* ------------------------------------------------------------------ *)
(* Cache                                                              *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Alcotest.(check (option int)) "a present" (Some 1) (Cache.find c "a");
  (* "a" is now most recent, so adding "c" evicts "b". *)
  Cache.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Cache.find c "c");
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 3 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Alcotest.(check int) "evictions" 1 s.Cache.evictions;
  Alcotest.(check int) "size" 2 s.Cache.size

let test_cache_disabled_and_invalid () =
  let c = Cache.create ~capacity:0 in
  Cache.add c "a" 1;
  Alcotest.(check (option int)) "capacity 0 never stores" None (Cache.find c "a");
  Alcotest.check_raises "negative capacity rejected"
    (Invalid_argument "Cache.create: capacity must be >= 0") (fun () ->
      ignore (Cache.create ~capacity:(-1)))

let test_canonical_key_permutation_invariant () =
  let g = Prng.of_path [| 5; 98; 0 |] in
  for _ = 1 to 20 do
    let shop = gen_instance g in
    let shuffled = permute g shop in
    Alcotest.(check string)
      "permutation has the same canonical key" (Cache.key shop) (Cache.key shuffled);
    (* A schedule computed on the canonical form, restored to the
       original labelling, must still satisfy every constraint. *)
    let canon = Cache.canonicalize shuffled in
    let sched = E2e_core.Greedy_edf.schedule canon.Cache.shop in
    let restored =
      Schedule.make shuffled (Cache.restore_starts canon sched.Schedule.starts)
    in
    match Schedule.check restored with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "restored schedule violates constraints"
  done

(* The incremental Add path must be indistinguishable from a from-scratch
   canonicalization of the merged candidate: same key, same permutation,
   same rendered lines — byte for byte. *)
let test_merge_matches_canonicalize () =
  let g = Prng.of_path [| 5; 99; 0 |] in
  for _ = 1 to 30 do
    let shop = gen_instance g in
    let n = Recurrence_shop.n_tasks shop in
    let h = 1 + Prng.int g (n - 1) in
    let committed =
      Recurrence_shop.make ~visit:shop.Recurrence_shop.visit
        (Array.sub shop.Recurrence_shop.tasks 0 h)
    in
    let fresh = Array.sub shop.Recurrence_shop.tasks h (n - h) in
    let merged = Cache.merge ~base:(Cache.canonicalize committed) fresh in
    let full = Cache.canonicalize shop in
    Alcotest.(check string) "merge key = full key" full.Cache.key merged.Cache.key;
    Alcotest.(check (array int)) "merge perm = full perm" full.Cache.perm merged.Cache.perm;
    Alcotest.(check (array string)) "merge lines = full lines" full.Cache.lines
      merged.Cache.lines
  done

let test_keyer_reuses () =
  let g = Prng.of_path [| 5; 97; 0 |] in
  let k = Cache.Keyer.create () in
  for _ = 1 to 10 do
    let shop = gen_instance g in
    let c1 = Cache.Keyer.canonicalize k shop in
    Alcotest.(check string) "keyer agrees with canonicalize" (Cache.key shop) c1.Cache.key;
    (* A permutation sorts to the same canonical instance, so the second
       canonicalization must skip the render-and-digest step yet hand
       back the same key (and a perm valid for the permuted shop). *)
    let shuffled = permute g shop in
    let c2 = Cache.Keyer.canonicalize k shuffled in
    Alcotest.(check string) "permutation reuses the key" c1.Cache.key c2.Cache.key;
    (* The reused canonical carries the shuffled shop's own perm: the
       task at canonical position [p] must be (a content-equal twin of)
       [shuffled.tasks.(perm.(p))]. *)
    Array.iteri
      (fun p orig ->
        Alcotest.(check string) "perm points at a content-equal task"
          c2.Cache.lines.(p)
          (E2e_model.Instance_io.task_line shuffled.Recurrence_shop.tasks.(orig)))
      c2.Cache.perm
  done;
  let s = Cache.Keyer.stats k in
  Alcotest.(check bool) "every permutation was a reuse" true (s.Cache.Keyer.reused >= 10);
  Alcotest.(check bool) "distinct instances rendered once each" true
    (s.Cache.Keyer.rendered >= 1 && s.Cache.Keyer.rendered <= 10)

(* ------------------------------------------------------------------ *)
(* Determinism and cache transparency                                 *)

let test_deterministic_across_jobs () =
  List.iter
    (fun seed ->
      let log = gen_log seed 40 in
      let o1, _ = run_log ~jobs:1 ~cache_capacity:64 log in
      let o4, _ = run_log ~jobs:4 ~cache_capacity:64 log in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: -j1 and -j4 reply logs identical" seed)
        (render_outcomes o1) (render_outcomes o4))
    [ 1; 2; 3 ]

let test_cache_transparent () =
  List.iter
    (fun seed ->
      let log = gen_log seed 40 in
      let on, b = run_log ~jobs:2 ~cache_capacity:64 log in
      let off, _ = run_log ~jobs:2 ~cache_capacity:0 log in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: cached and uncached replies identical" seed)
        (render_outcomes off) (render_outcomes on);
      (* The comparison only means something if the cache actually got
         exercised. *)
      let s = Option.get (Batcher.cache_stats b) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: cache saw lookups" seed)
        true
        (s.Cache.hits + s.Cache.misses > 0))
    [ 1; 2; 3 ]

(* The fuzzer's own differential harness, as a regression test: batched
   cached engine vs sequential cache-free reference. *)
let test_fuzz_serve_class () =
  let r = Serve_fuzz.run ~jobs:2 ~seed:11 ~trials:25 () in
  Alcotest.(check int) "trials" 25 r.Serve_fuzz.trials;
  Alcotest.(check int) "all agreed" 25 r.Serve_fuzz.agreed

(* ------------------------------------------------------------------ *)
(* Soundness                                                          *)

let admitted_schedules outcomes =
  Array.to_list outcomes
  |> List.filter_map (function
       | Batcher.Reply
           (Admission.Decided { decision = Admission.Admitted { schedule; _ }; _ }) ->
           Some schedule
       | _ -> None)

let test_admitted_schedules_check () =
  let log = gen_log 7 60 in
  let outcomes, _ = run_log ~jobs:4 ~cache_capacity:32 log in
  let schedules = admitted_schedules outcomes in
  Alcotest.(check bool) "log admits something" true (List.length schedules > 0);
  List.iter
    (fun s ->
      match Schedule.check s with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "admitted schedule fails the checker")
    schedules

let test_rejection_certificate () =
  let instance = infeasible_instance () in
  let _, reply =
    Admission.apply Admission.empty (Admission.Submit { shop = "bad"; instance })
  in
  match reply with
  | Admission.Decided { decision = Admission.Rejected { certificate = Some _ }; _ } ->
      let fs =
        Flow_shop.make ~processors:instance.Recurrence_shop.visit.E2e_model.Visit.processors
          instance.Recurrence_shop.tasks
      in
      Alcotest.(check bool)
        "certificate confirmed by the independent checker" true
        (Infeasibility.is_provably_infeasible fs)
  | _ -> Alcotest.fail "infeasible set not rejected with a certificate"

let test_rejected_never_commits () =
  let state, _ =
    Admission.apply Admission.empty
      (Admission.Submit { shop = "bad"; instance = infeasible_instance () })
  in
  Alcotest.(check int) "nothing committed" 0 (Admission.n_committed state)

(* ------------------------------------------------------------------ *)
(* Backpressure                                                       *)

let test_backpressure () =
  let config =
    { Batcher.queue_capacity = 4; batch = 2; budget = Admission.Unbounded; jobs = 1;
      cache_capacity = 8 }
  in
  let b = Batcher.create ~config () in
  let log = List.init 10 (fun i -> Admission.Query { shop = Printf.sprintf "q%d" i }) in
  let outcomes = Batcher.process_log b log in
  let overloaded =
    Array.to_list outcomes
    |> List.filter (function Batcher.Overloaded -> true | _ -> false)
    |> List.length
  in
  Alcotest.(check int) "exactly the overflow is refused" 6 overloaded;
  Alcotest.(check int) "every request got an answer" 10 (Array.length outcomes);
  Array.iteri
    (fun i o ->
      let expect_overloaded = i >= 4 in
      let is_overloaded = o = Batcher.Overloaded in
      Alcotest.(check bool)
        (Printf.sprintf "request %d backpressure position" i)
        expect_overloaded is_overloaded)
    outcomes;
  Alcotest.(check int) "queue drained" 0 (Batcher.pending b)

let test_batch_splits_same_shop () =
  (* Two requests on one shop are order-dependent: the duplicate submit
     must be answered after (and because of) the first one committing. *)
  let g = Prng.of_path [| 13; 96; 0 |] in
  let instance = gen_instance g in
  let log =
    [
      Admission.Submit { shop = "x"; instance };
      Admission.Submit { shop = "x"; instance = permute g instance };
    ]
  in
  let outcomes, _ = run_log ~jobs:2 ~cache_capacity:8 log in
  (match outcomes.(0) with
  | Batcher.Reply (Admission.Decided { decision = Admission.Admitted _; _ }) -> ()
  | _ -> Alcotest.fail "first submit should be admitted");
  match outcomes.(1) with
  | Batcher.Reply (Admission.Request_error _) -> ()
  | _ -> Alcotest.fail "duplicate submit should be an error"

(* ------------------------------------------------------------------ *)
(* Admitted schedules replayed through the runtime dispatcher         *)

let test_dispatcher_replays_admissions () =
  let log = gen_log 21 40 in
  let outcomes, _ = run_log ~jobs:2 ~cache_capacity:32 log in
  let schedules = admitted_schedules outcomes in
  Alcotest.(check bool) "log admits something" true (List.length schedules > 0);
  List.iter
    (fun s ->
      List.iter
        (fun discipline ->
          let nominal = Dispatcher.scale_durations s ~factor:Rat.one in
          let out = Dispatcher.run discipline s ~actual:nominal in
          Alcotest.(check int)
            "no structural violations under nominal durations" 0
            out.Dispatcher.structural_violations;
          Alcotest.(check int)
            "no deadline misses under nominal durations" 0
            (List.length out.Dispatcher.deadline_misses))
        [ Dispatcher.Time_triggered; Dispatcher.Work_conserving ];
      (* Early completions must stay sustainable. *)
      let early = Dispatcher.scale_durations s ~factor:(Rat.make 1 2) in
      Alcotest.(check bool)
        "time-triggered sustainable under early completion" true
        (Dispatcher.sustainable_time_triggered s ~actual:early))
    schedules

(* ------------------------------------------------------------------ *)
(* Protocol                                                           *)

let roundtrip line =
  match Protocol.parse_request line with
  | Ok (Protocol.Request r) -> Protocol.render_request r
  | Ok _ -> Alcotest.fail (Printf.sprintf "%S: not a request" line)
  | Error m -> Alcotest.fail (Printf.sprintf "%S: %s" line m)

let test_protocol_roundtrip () =
  List.iter
    (fun line -> Alcotest.(check string) line line (roundtrip line))
    [
      "submit s1 task 0 10 1 1 ; task 0 8 2 2";
      "submit s2 visit 1 2 1 ; task 0 10 1 1 1 ; task 1/2 21/2 2 2 2";
      "add s1 task 3/4 5 1 2";
      "query s1";
      "drop s1";
    ]

let test_protocol_errors_and_controls () =
  (match Protocol.parse_request "hello e2e-serve/1" with
  | Ok (Protocol.Hello v) -> Alcotest.(check string) "hello version" Protocol.version v
  | _ -> Alcotest.fail "hello not parsed");
  (match Protocol.parse_request "stats" with
  | Ok Protocol.Stats -> ()
  | _ -> Alcotest.fail "stats not parsed");
  (match Protocol.parse_request "quit" with
  | Ok Protocol.Quit -> ()
  | _ -> Alcotest.fail "quit not parsed");
  (match Protocol.parse_request "# comment" with
  | Ok Protocol.Blank -> ()
  | _ -> Alcotest.fail "comment not blank");
  (match Protocol.parse_request "" with
  | Ok Protocol.Blank -> ()
  | _ -> Alcotest.fail "empty not blank");
  List.iter
    (fun line ->
      match Protocol.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" line))
    [
      "submit";
      "submit bad/name! task 0 1 1";
      "submit s1 nonsense 1 2";
      "add s1 visit 1 2 ; task 0 1 1 1" (* visit not allowed in add *);
      "frobnicate s1";
      "query";
    ]

let test_protocol_render_reply () =
  let reply =
    Admission.Queried { shop = "s1"; n_tasks = Some 3 }
  in
  Alcotest.(check string)
    "info rendering" "info shop=s1 tasks=3"
    (Protocol.render_reply (Batcher.Reply reply));
  Alcotest.(check string)
    "overloaded rendering" "overloaded"
    (Protocol.render_reply Batcher.Overloaded);
  Alcotest.(check string)
    "hello ok" "ok e2e-serve/1"
    (Protocol.render_hello ~requested:Protocol.version)

(* ------------------------------------------------------------------ *)
(* Incremental admission                                              *)

let identical_instance ?(n = 6) seed =
  let g = Prng.of_path [| seed; 55; 0 |] in
  Recurrence_shop.of_traditional
    (Feasible_gen.identical_length g ~n ~m:2 ~tau:Rat.one ~window:(2 * n))

let add_one shop release =
  Admission.Add
    { shop; tasks = [ (release, Rat.add release (Rat.of_int 6), Array.make 2 Rat.one) ] }

(* An identical-length submit leaves a warm [Machine] handle; the
   following adds must ride the delta path, be admitted, and keep the
   resident accounting in step. *)
let test_incremental_warm_path () =
  let log =
    [
      Admission.Submit { shop = "w"; instance = identical_instance 3 };
      add_one "w" Rat.zero;
      add_one "w" (Rat.of_int 2);
    ]
  in
  let outcomes, b = run_log ~jobs:1 ~cache_capacity:0 log in
  Array.iter
    (fun o ->
      match o with
      | Batcher.Reply (Admission.Decided { decision = Admission.Admitted _; _ }) -> ()
      | o -> Alcotest.failf "expected admitted, got %a" Batcher.pp_outcome o)
    outcomes;
  let svc = Batcher.service_stats b in
  Alcotest.(check int) "both adds on the delta path" 2 svc.Batcher.inc_hits;
  Alcotest.(check int) "no fallbacks" 0 svc.Batcher.inc_misses;
  Alcotest.(check (list (pair string int))) "resident sizes track commits"
    [ ("w", 8) ] svc.Batcher.resident;
  Alcotest.(check int) "warm handle covers the whole shop" 8
    (Admission.warm_resident (Batcher.engine b))

(* A shop admitted through the portfolio (no [Machine] handle) sends its
   adds down the full-solve path and counts misses, with replies still
   matching the sequential reference engine. *)
let test_incremental_fallback_counted () =
  let g = Prng.of_path [| 9; 55; 1 |] in
  let log =
    [ Admission.Submit { shop = "c"; instance = gen_instance g }; add_one "c" Rat.zero ]
  in
  let _, b = run_log ~jobs:1 ~cache_capacity:0 log in
  let svc = Batcher.service_stats b in
  Alcotest.(check int) "no delta hits without a handle" 0 svc.Batcher.inc_hits;
  Alcotest.(check int) "fallback counted" 1 svc.Batcher.inc_misses

(* Replies must not depend on whether the delta path or a worker-domain
   full solve produced them. *)
let test_incremental_transparent_across_jobs () =
  let log =
    Admission.Submit { shop = "w"; instance = identical_instance 11 }
    :: List.init 6 (fun i -> add_one "w" (Rat.of_int i))
  in
  let o1, _ = run_log ~jobs:1 ~cache_capacity:64 log in
  let o4, _ = run_log ~jobs:4 ~cache_capacity:64 log in
  Alcotest.(check string) "byte-identical replies" (render_outcomes o1) (render_outcomes o4)

let test_metrics_exposes_incremental () =
  let log =
    [ Admission.Submit { shop = "w"; instance = identical_instance 3 }; add_one "w" Rat.zero ]
  in
  let _, b = run_log ~jobs:1 ~cache_capacity:0 log in
  let metrics = Protocol.render_metrics b in
  let contains needle =
    let nl = String.length needle and ml = String.length metrics in
    let rec go i = i + nl <= ml && (String.sub metrics i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("metrics expose " ^ needle) true (contains needle))
    [
      "serve_incremental_hits_total 1";
      "serve_incremental_misses_total 0";
      "serve_warm_resident_tasks 7";
      "serve_shop_resident_tasks{shop=\"w\"} 7";
    ]

(* ------------------------------------------------------------------ *)
(* Protocol hardening: whitespace splitting and the add whitelist      *)

(* Regression: [cut_word] split only on the space character, so a
   tab-separated request misparsed its first word and fell through to a
   parse error.  Any ASCII whitespace must now delimit words. *)
let test_protocol_whitespace () =
  (match Protocol.parse_request "query\ts1" with
  | Ok (Protocol.Request (Admission.Query { shop })) ->
      Alcotest.(check string) "tab-separated query" "s1" shop
  | Ok _ -> Alcotest.fail "tab-separated query parsed as something else"
  | Error m -> Alcotest.failf "tab-separated query rejected: %s" m);
  (match Protocol.parse_request "drop\t s1" with
  | Ok (Protocol.Request (Admission.Drop { shop })) ->
      Alcotest.(check string) "tab+space drop" "s1" shop
  | _ -> Alcotest.fail "tab+space drop misparsed");
  let render line =
    match Protocol.parse_request line with
    | Ok (Protocol.Request r) -> Protocol.render_request r
    | Ok _ -> Alcotest.failf "%S: not a request" line
    | Error m -> Alcotest.failf "%S: %s" line m
  in
  Alcotest.(check string) "tabs parse like spaces"
    (render "add s1 task 0 6 1 1")
    (render "add\ts1\ttask 0 6 1 1")

(* Regression: [parse_tasks] only *extracted* task directives, so a
   payload smuggling any other directive (visit, or garbage like
   [procs 3]) was silently accepted with the stray line dropped.  Every
   non-task directive must be rejected outright. *)
let test_parse_tasks_whitelist () =
  List.iter
    (fun line ->
      match Protocol.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should be rejected" line)
    [
      "add s1 visit 1 2 ; task 0 6 1 1";
      "add s1 procs 3 ; task 0 6 1 1";
      "add s1 task 0 6 1 1 ; deadline 5";
      "add s1 frobnicate";
      "submit s1 task 0 6 1 1 ; procs 3";
    ];
  (* Comments and blank segments stay legal inside a payload. *)
  match Protocol.parse_request "add s1 task 0 6 1 1 ; # a note ; ; task 1 7 1 1" with
  | Ok (Protocol.Request (Admission.Add { shop; tasks })) ->
      Alcotest.(check string) "shop" "s1" shop;
      Alcotest.(check int) "both tasks kept" 2 (List.length tasks)
  | _ -> Alcotest.fail "commented add payload rejected"

(* ------------------------------------------------------------------ *)
(* Concurrent TCP transport                                            *)

let test_resolve_host () =
  Alcotest.(check string) "dotted quad" "127.0.0.1"
    (Unix.string_of_inet_addr (Server.resolve_host "127.0.0.1"));
  Alcotest.(check string) "hostname resolves" "127.0.0.1"
    (Unix.string_of_inet_addr (Server.resolve_host "localhost"));
  match Server.resolve_host "no-such-host.invalid" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "bogus hostname resolved"

(* Run [serve_tcp] on an ephemeral port in its own domain, hand the
   bound port to [f], and join the server once [f] has consumed
   [max_connections] connections. *)
let with_server ?(jobs = 1) ?(accept_pool = 3) ?(window = 64) ?(drainers = 1)
    ~max_connections f =
  let config =
    { Batcher.default_config with Batcher.jobs; Batcher.queue_capacity = 4096 }
  in
  let stripes = Stripes.create ~config ~stripes:drainers () in
  let mu = Mutex.create () and cv = Condition.create () in
  let port = ref 0 in
  let srv =
    Domain.spawn (fun () ->
        Server.serve_tcp ~schedules:false ~max_connections ~accept_pool ~window
          ~ready:(fun p ->
            Mutex.lock mu;
            port := p;
            Condition.signal cv;
            Mutex.unlock mu)
          ~port:0 stripes)
  in
  Mutex.lock mu;
  while !port = 0 do
    Condition.wait cv mu
  done;
  let p = !port in
  Mutex.unlock mu;
  let r = f p in
  (* Only join on success: a failed assertion must surface, not hang
     behind a server still waiting for its connection quota. *)
  Domain.join srv;
  r

(* One client session: connect, read the greeting, send every line plus
   [quit], then read replies to end-of-stream. *)
let tcp_session port lines =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let greeting = input_line ic in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  output_string oc "quit\n";
  flush oc;
  let replies = ref [] in
  (try
     while true do
       replies := input_line ic :: !replies
     done
   with End_of_file -> ());
  close_in_noerr ic;
  (greeting, List.rev !replies)

let prefix_shop pfx : Admission.request -> Admission.request = function
  | Admission.Submit { shop; instance } -> Admission.Submit { shop = pfx ^ shop; instance }
  | Admission.Add { shop; tasks } -> Admission.Add { shop = pfx ^ shop; tasks }
  | Admission.Query { shop } -> Admission.Query { shop = pfx ^ shop }
  | Admission.Drop { shop } -> Admission.Drop { shop = pfx ^ shop }

(* The sequential oracle for one connection: replay just that
   connection's log through a fresh single-domain batcher. *)
let oracle_replies log =
  let config = { Batcher.default_config with Batcher.queue_capacity = 4096 } in
  let outcomes = Batcher.process_log (Batcher.create ~config ()) log in
  Array.to_list (Array.map (Protocol.render_reply ~schedules:false) outcomes)

(* The transport's headline guarantee: M concurrent pipelined clients
   on disjoint shop namespaces each read exactly the reply stream a
   dedicated sequential server would have produced for their own
   request log — at every jobs value, under any interleaving the
   scheduler happens to pick. *)
let test_concurrent_transport () =
  let n_clients = 3 and requests = 24 in
  let logs =
    List.init n_clients (fun c ->
        List.map (prefix_shop (Printf.sprintf "c%d." c)) (gen_log (300 + c) requests))
  in
  let expected = List.map (fun log -> oracle_replies log @ [ "bye" ]) logs in
  let run_once ~jobs =
    with_server ~jobs ~accept_pool:n_clients ~max_connections:n_clients (fun port ->
        logs
        |> List.map (fun log ->
               let lines = List.map Protocol.render_request log in
               Domain.spawn (fun () -> tcp_session port lines))
        |> List.map Domain.join)
  in
  List.iter
    (fun jobs ->
      let results = run_once ~jobs in
      List.iteri
        (fun i ((greeting, replies), want) ->
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d client %d greeting" jobs i)
            Protocol.greeting greeting;
          Alcotest.(check (list string))
            (Printf.sprintf "jobs=%d client %d replies match its sequential oracle" jobs i)
            want replies)
        (List.combine results expected))
    [ 1; 4 ]

(* Regression: teardown closed the socket without draining the write
   side, so a reply buffered behind [quit] could be lost.  A pipelined
   request+quit written in one burst must still yield the reply line,
   the farewell, then a clean EOF. *)
let test_quit_flushes_replies () =
  with_server ~accept_pool:1 ~max_connections:1 (fun port ->
      let greeting, replies = tcp_session port [ "query ghost" ] in
      Alcotest.(check string) "greeting" Protocol.greeting greeting;
      Alcotest.(check (list string))
        "reply drained before farewell"
        [ "info shop=ghost unknown"; "bye" ]
        replies)

(* Regression: a connection that vanishes before (or during) setup must
   not take the accept pool down — the next connection is served
   normally. *)
let test_abrupt_disconnect () =
  with_server ~accept_pool:1 ~max_connections:2 (fun port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.close fd;
      let greeting, replies = tcp_session port [ "query ghost" ] in
      Alcotest.(check string) "second connection greeted" Protocol.greeting greeting;
      Alcotest.(check (list string))
        "second connection served"
        [ "info shop=ghost unknown"; "bye" ]
        replies)

(* ------------------------------------------------------------------ *)
(* Striped batcher                                                     *)

(* The striping invariant's headline: replaying one interleaved log
   (same-shop chains and cross-shop traffic mixed) through 1, 2 and 4
   stripes yields byte-identical replies — the stripe map is a pure
   function of the shop name, same-shop requests stay FIFO on their
   stripe, and the caches are transparent however their contents
   partition. *)
let test_stripe_determinism () =
  let config = { Batcher.default_config with Batcher.queue_capacity = 4096 } in
  (* Interleave two namespaces round-robin so consecutive requests
     almost always hit different stripes while each shop's own history
     stays in order. *)
  let a = gen_log 501 60 and b = List.map (prefix_shop "x.") (gen_log 502 60) in
  let rec weave = function
    | [], rest | rest, [] -> rest
    | x :: xs, y :: ys -> x :: y :: weave (xs, ys)
  in
  let log = weave (a, b) in
  let render outcomes =
    Array.to_list (Array.map (Protocol.render_reply ~schedules:true) outcomes)
  in
  let run stripes =
    render (Stripes.process_log (Stripes.create ~config ~stripes ()) log)
  in
  let baseline = run 1 in
  (* The log's shops must actually spread over stripes, or the check is
     vacuous. *)
  let shops =
    List.sort_uniq compare (List.map Batcher.shop_of log)
  in
  let hit =
    List.sort_uniq compare
      (List.map (fun s -> Stripes.stripe_index ~stripes:4 s) shops)
  in
  Alcotest.(check bool) "log spans multiple stripes" true (List.length hit > 1);
  List.iter
    (fun stripes ->
      Alcotest.(check (list string))
        (Printf.sprintf "stripes=%d replies byte-identical to 1-stripe" stripes)
        baseline (run stripes))
    [ 2; 4 ];
  (* Request ids partition without collision across stripes. *)
  let s4 = Stripes.create ~config ~stripes:4 () in
  ignore (Stripes.process_log s4 log);
  let ids_seen = Stripes.last_id s4 in
  Alcotest.(check bool) "ids handed out" true (ids_seen >= List.length log / 2)

(* The striped TCP transport against per-connection sequential oracles:
   same guarantee as [test_concurrent_transport], now with one drainer
   domain per stripe. *)
let test_multi_drainer_transport () =
  let n_clients = 3 and requests = 24 in
  let logs =
    List.init n_clients (fun c ->
        List.map (prefix_shop (Printf.sprintf "d%d." c)) (gen_log (700 + c) requests))
  in
  let expected = List.map (fun log -> oracle_replies log @ [ "bye" ]) logs in
  List.iter
    (fun drainers ->
      let results =
        with_server ~drainers ~accept_pool:n_clients ~max_connections:n_clients
          (fun port ->
            logs
            |> List.map (fun log ->
                   let lines = List.map Protocol.render_request log in
                   Domain.spawn (fun () -> tcp_session port lines))
            |> List.map Domain.join)
      in
      List.iteri
        (fun i ((greeting, replies), want) ->
          Alcotest.(check string)
            (Printf.sprintf "drainers=%d client %d greeting" drainers i)
            Protocol.greeting greeting;
          Alcotest.(check (list string))
            (Printf.sprintf "drainers=%d client %d replies match oracle" drainers i)
            want replies)
        (List.combine results expected))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Wire read-error surface and the shared stdio read path              *)

(* A peer that dies hard (RST) must surface as [`Error], not a clean
   [`Eof] — serve_tcp and the dispatcher account the two separately. *)
let test_wire_error_surface () =
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lsock 1;
  let port =
    match Unix.getsockname lsock with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  let client = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect client (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let server, _ = Unix.accept lsock in
  Unix.close lsock;
  let r = E2e_serve.Wire.make_reader server in
  ignore (Unix.write_substring client "hello\n" 0 6);
  (match E2e_serve.Wire.read_line r with
  | `Line l -> Alcotest.(check string) "line before reset" "hello" l
  | _ -> Alcotest.fail "expected the line written before the reset");
  (* SO_LINGER 0 close sends RST instead of FIN. *)
  Unix.setsockopt_optint client Unix.SO_LINGER (Some 0);
  Unix.close client;
  (match E2e_serve.Wire.read_line r with
  | `Error _ -> ()
  | `Eof -> Alcotest.fail "reset surfaced as clean EOF"
  | `Line _ | `Too_long -> Alcotest.fail "reset surfaced as data");
  Unix.close server

(* Regression for the stdio transport's move onto the bounded Wire
   reader: an oversized request line is answered with the protocol
   error and ends the session instead of hanging or misparsing the
   line's tail. *)
let test_session_oversized_line () =
  (* The session stops reading mid-line at the cap; closing the read
     end un-blocks the writer thread (EPIPE, not a killing SIGPIPE). *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  let req_r, req_w = Unix.pipe () in
  let rep_r, rep_w = Unix.pipe () in
  let oversized = String.make (E2e_serve.Wire.max_line + 8) 'a' in
  let writer =
    Thread.create
      (fun () ->
        let payload = "query ghost\n" ^ oversized ^ "\nquery ghost\n" in
        (try E2e_serve.Wire.write_all req_w payload with Unix.Unix_error _ -> ());
        Unix.close req_w)
      ()
  in
  let oc = Unix.out_channel_of_descr rep_w in
  let batcher = Batcher.create () in
  Server.session ~schedules:false ~chunk:1 batcher req_r oc;
  close_out oc;
  Unix.close req_r;
  Thread.join writer;
  let ic = Unix.in_channel_of_descr rep_r in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  match List.rev !lines with
  | [ greeting; reply; err ] ->
      Alcotest.(check string) "greeting" Protocol.greeting greeting;
      Alcotest.(check string) "first request answered" "info shop=ghost unknown" reply;
      Alcotest.(check bool) "oversized line answered with the protocol error" true
        (String.length err >= 5 && String.sub err 0 5 = "error");
      (* The third request never ran: the session ended at the cap. *)
      ()
  | lines ->
      Alcotest.failf "expected greeting+reply+error then EOF, got %d lines"
        (List.length lines)

let suite =
  [
    ("cache: LRU bookkeeping", `Quick, test_cache_lru);
    ("cache: capacity 0 and invalid", `Quick, test_cache_disabled_and_invalid);
    ("cache: canonical key permutation-invariant", `Quick,
     test_canonical_key_permutation_invariant);
    ("cache: incremental merge matches full canonicalization", `Quick,
     test_merge_matches_canonicalize);
    ("cache: keyer skips digests on repeats", `Quick, test_keyer_reuses);
    ("batcher: byte-identical replies across jobs", `Slow, test_deterministic_across_jobs);
    ("batcher: cache transparency", `Slow, test_cache_transparent);
    ("fuzz: serve differential class agrees", `Slow, test_fuzz_serve_class);
    ("admission: admitted schedules pass the checker", `Quick, test_admitted_schedules_check);
    ("admission: rejection carries a confirmed certificate", `Quick,
     test_rejection_certificate);
    ("admission: rejected sets never commit", `Quick, test_rejected_never_commits);
    ("batcher: backpressure answers overloaded", `Quick, test_backpressure);
    ("batcher: same-shop requests split batches", `Quick, test_batch_splits_same_shop);
    ("dispatcher: admitted schedules replay without misses", `Slow,
     test_dispatcher_replays_admissions);
    ("protocol: request round-trips", `Quick, test_protocol_roundtrip);
    ("protocol: controls and parse errors", `Quick, test_protocol_errors_and_controls);
    ("protocol: reply rendering", `Quick, test_protocol_render_reply);
    ("admission: warm delta path serves adds", `Quick, test_incremental_warm_path);
    ("admission: cold shops count delta misses", `Quick, test_incremental_fallback_counted);
    ("batcher: delta path transparent across jobs", `Quick,
     test_incremental_transparent_across_jobs);
    ("protocol: metrics expose incremental counters", `Quick,
     test_metrics_exposes_incremental);
    ("protocol: any whitespace splits words", `Quick, test_protocol_whitespace);
    ("protocol: add payloads whitelist task directives", `Quick,
     test_parse_tasks_whitelist);
    ("server: resolve_host accepts addresses and hostnames", `Quick, test_resolve_host);
    ("server: concurrent clients match their sequential oracles", `Slow,
     test_concurrent_transport);
    ("server: quit flushes buffered replies", `Quick, test_quit_flushes_replies);
    ("server: abrupt disconnect leaves the pool serving", `Quick, test_abrupt_disconnect);
    ("stripes: replies byte-identical across stripe counts", `Slow,
     test_stripe_determinism);
    ("server: multi-drainer transport matches sequential oracles", `Slow,
     test_multi_drainer_transport);
    ("wire: hard reset surfaces as `Error, not EOF", `Quick, test_wire_error_surface);
    ("server: oversized stdio line answered and session ended", `Quick,
     test_session_oversized_line);
  ]
