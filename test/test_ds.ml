module Rat = E2e_rat.Rat
module Heap = E2e_ds.Heap
module Interval_set = E2e_ds.Interval_set
open Helpers

(* {1 Heap} *)

let drain_all h =
  let rec go acc = match Heap.pop h with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let test_heap_basics () =
  let h = Heap.create ~cmp:Rat.compare in
  Alcotest.(check bool) "fresh heap empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop empty" true (Heap.pop h = None);
  Heap.push h (r 3);
  Heap.push h (r 1);
  Heap.push h (r 2);
  Alcotest.(check int) "length" 3 (Heap.length h);
  check_rat "peek is min" (r 1) (Option.get (Heap.peek h));
  check_rat "pop min" (r 1) (Option.get (Heap.pop h));
  check_rat "next min" (r 2) (Option.get (Heap.pop h));
  Heap.push h (r 0);
  check_rat "push below current min" (r 0) (Option.get (Heap.pop h));
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:300
    QCheck.(list_of_size Gen.(int_range 0 60) (QCheck.make (rat_gen ~den:6 ~lo:(-9) ~hi:9 ())))
    (fun xs ->
      let h = Heap.of_list ~cmp:Rat.compare xs in
      let drained = drain_all h in
      List.length drained = List.length xs
      && List.for_all2 Rat.equal (List.sort Rat.compare xs) drained)

(* Interleaving pushes and pops must behave like a sorted multiset:
   every pop returns the minimum of what is currently inside. *)
let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap interleaved push/pop matches sorted model" ~count:300
    QCheck.(
      list_of_size
        Gen.(int_range 0 80)
        (pair bool (QCheck.make (rat_gen ~den:4 ~lo:(-9) ~hi:9 ()))))
    (fun ops ->
      let h = Heap.create ~cmp:Rat.compare in
      let model = ref [] in
      List.for_all
        (fun (is_push, x) ->
          if is_push then begin
            Heap.push h x;
            model := List.sort Rat.compare (x :: !model);
            true
          end
          else
            match (Heap.pop h, !model) with
            | None, [] -> true
            | Some y, m :: rest ->
                model := rest;
                Rat.equal y m
            | Some _, [] | None, _ :: _ -> false)
        ops)

(* A copy is an independent heap: edits to the source must not leak. *)
let test_heap_copy () =
  let h = Heap.of_list ~cmp:Rat.compare [ r 3; r 1; r 2 ] in
  let c = Heap.copy h in
  check_rat "pop source" (r 1) (Option.get (Heap.pop h));
  Heap.push h (r 0);
  Alcotest.(check int) "copy length unchanged" 3 (Heap.length c);
  Alcotest.(check bool) "copy drains original contents" true
    (List.for_all2 Rat.equal [ r 1; r 2; r 3 ] (drain_all c));
  Alcotest.(check bool) "source saw its own edits" true
    (List.for_all2 Rat.equal [ r 0; r 2; r 3 ] (drain_all h))

(* {1 Interval set} *)

let iset_of pairs =
  List.fold_left
    (fun s (l, rt) -> Interval_set.add s ~left:(q l) ~right:(q rt))
    Interval_set.empty pairs

let check_invariants s =
  (* Sorted by left endpoint, pairwise disjoint (touching allowed). *)
  let rec go = function
    | (l1, r1) :: ((l2, _) :: _ as rest) ->
        Alcotest.(check bool) "interval nonempty" true Rat.(l1 < r1);
        Alcotest.(check bool) "sorted and disjoint" true Rat.(r1 <= l2);
        go rest
    | [ (l, rt) ] -> Alcotest.(check bool) "interval nonempty" true Rat.(l < rt)
    | [] -> ()
  in
  go (Interval_set.to_list s)

let test_iset_merge_overlap () =
  let s = iset_of [ ("0", "2"); ("1", "3"); ("5", "6") ] in
  check_invariants s;
  Alcotest.(check int) "overlap coalesced" 2 (Interval_set.cardinal s);
  Alcotest.(check (list (pair string string))) "merged span"
    [ ("0", "3"); ("5", "6") ]
    (List.map
       (fun (l, rt) -> (Rat.to_string l, Rat.to_string rt))
       (Interval_set.to_list s))

let test_iset_touching_not_merged () =
  (* Open intervals: sharing an endpoint leaves that point startable, so
     (0,1) and (1,2) must stay separate and 1 must not be a member. *)
  let s = iset_of [ ("0", "1"); ("1", "2") ] in
  check_invariants s;
  Alcotest.(check int) "kept separate" 2 (Interval_set.cardinal s);
  Alcotest.(check bool) "shared endpoint not inside" false (Interval_set.mem s (q "1"));
  check_rat "adjust_up fixes shared endpoint" (q "1") (Interval_set.adjust_up s (q "1"));
  Alcotest.(check bool) "interior is inside" true (Interval_set.mem s (q "0.5"))

let test_iset_boundaries () =
  let s = iset_of [ ("1", "3") ] in
  Alcotest.(check bool) "left endpoint outside" false (Interval_set.mem s (q "1"));
  Alcotest.(check bool) "right endpoint outside" false (Interval_set.mem s (q "3"));
  check_rat "adjust_up from interior" (q "3") (Interval_set.adjust_up s (q "2"));
  check_rat "adjust_up from endpoint" (q "1") (Interval_set.adjust_up s (q "1"));
  check_rat "adjust_down from interior" (q "1") (Interval_set.adjust_down s (q "2"));
  check_rat "adjust_down from endpoint" (q "3") (Interval_set.adjust_down s (q "3"));
  check_rat "adjust_up outside" (q "5") (Interval_set.adjust_up s (q "5"));
  let empty = Interval_set.empty in
  Alcotest.(check bool) "empty is empty" true (Interval_set.is_empty empty);
  check_rat "adjust on empty" (q "2") (Interval_set.adjust_up empty (q "2"))

let test_iset_degenerate_add () =
  let s = Interval_set.add Interval_set.empty ~left:(q "2") ~right:(q "2") in
  Alcotest.(check bool) "empty interval ignored" true (Interval_set.is_empty s);
  let s = Interval_set.add Interval_set.empty ~left:(q "3") ~right:(q "2") in
  Alcotest.(check bool) "inverted interval ignored" true (Interval_set.is_empty s)

let pairs_of s =
  List.map (fun (l, rt) -> (Rat.to_string l, Rat.to_string rt)) (Interval_set.to_list s)

let test_iset_remove () =
  let s = iset_of [ ("0", "4"); ("6", "8") ] in
  (* Closed subtraction: the removed endpoints do not survive, so (0,4)
     splits into (0,1) and (2,4). *)
  let split = Interval_set.remove s ~left:(q "1") ~right:(q "2") in
  check_invariants split;
  Alcotest.(check (list (pair string string))) "interior removal splits"
    [ ("0", "1"); ("2", "4"); ("6", "8") ]
    (pairs_of split);
  (* A point removal splits the interval containing it. *)
  let point = Interval_set.remove s ~left:(q "7") ~right:(q "7") in
  check_invariants point;
  Alcotest.(check (list (pair string string))) "point removal splits"
    [ ("0", "4"); ("6", "7"); ("7", "8") ]
    (pairs_of point);
  (* Disjoint removal is the identity; a covering removal empties. *)
  Alcotest.(check (list (pair string string))) "disjoint removal is identity"
    (pairs_of s)
    (pairs_of (Interval_set.remove s ~left:(q "4") ~right:(q "6")));
  Alcotest.(check bool) "covering removal empties" true
    (Interval_set.is_empty (Interval_set.remove s ~left:(q "-1") ~right:(q "9")));
  check_rat "measure after split" (q "5")
    (Interval_set.measure split)

let test_iset_snapshot () =
  let s = iset_of [ ("0", "2"); ("5", "6") ] in
  let snap = Interval_set.snapshot s in
  Alcotest.(check bool) "snapshot equals source" true
    (Interval_set.first_difference s (Interval_set.of_snapshot snap) = None);
  (* Persistence: edits to the source leave the snapshot untouched. *)
  let s' = Interval_set.add s ~left:(q "3") ~right:(q "4") in
  Alcotest.(check (list (pair string string))) "snapshot untouched by add"
    [ ("0", "2"); ("5", "6") ]
    (pairs_of (Interval_set.of_snapshot snap));
  (match Interval_set.first_difference s s' with
  | Some x -> check_rat "first difference at the new interval" (q "3") x
  | None -> Alcotest.fail "add must register as a difference");
  Alcotest.(check bool) "removal registers as a difference" true
    (Interval_set.first_difference s (Interval_set.remove s ~left:(q "0") ~right:(q "1"))
    <> None)

(* Naive model: a list of open intervals with fold-based queries —
   exactly the representation the pre-rewrite engine used. *)
let model_mem intervals x =
  List.exists (fun (l, rt) -> Rat.(l < x) && Rat.(x < rt)) intervals

let model_add intervals (l, rt) =
  if Rat.(l >= rt) then intervals
  else
    let overlapping, rest =
      List.partition (fun (l', r') -> Rat.(l' < rt) && Rat.(l < r')) intervals
    in
    let l = List.fold_left (fun acc (l', _) -> Rat.min acc l') l overlapping in
    let rt = List.fold_left (fun acc (_, r') -> Rat.max acc r') rt overlapping in
    List.sort (fun (a, _) (b, _) -> Rat.compare a b) ((l, rt) :: rest)

let arb_interval =
  QCheck.map
    (fun (a, b) -> if Rat.(a <= b) then (a, b) else (b, a))
    QCheck.(
      pair
        (QCheck.make (rat_gen ~den:4 ~lo:0 ~hi:12 ()))
        (QCheck.make (rat_gen ~den:4 ~lo:0 ~hi:12 ())))

let prop_iset_matches_model =
  QCheck.Test.make ~name:"interval set agrees with naive list model" ~count:300
    QCheck.(list_of_size Gen.(int_range 0 25) arb_interval)
    (fun intervals ->
      let s =
        List.fold_left
          (fun s (l, rt) -> Interval_set.add s ~left:l ~right:rt)
          Interval_set.empty intervals
      in
      let model = List.fold_left model_add [] intervals in
      (* Same membership on a probe grid covering all endpoints and
         midpoints, and same adjusted values. *)
      let probes =
        List.concat_map
          (fun (l, rt) ->
            [ l; rt; Rat.div_int (Rat.add l rt) 2; Rat.sub l (Rat.make 1 8); Rat.add rt (Rat.make 1 8) ])
          intervals
      in
      List.for_all
        (fun x ->
          Interval_set.mem s x = model_mem model x
          && Rat.equal (Interval_set.adjust_up s x)
               (match List.find_opt (fun (l, rt) -> Rat.(l < x) && Rat.(x < rt)) model with
                | Some (_, rt) -> rt
                | None -> x)
          && Rat.equal (Interval_set.adjust_down s x)
               (match List.find_opt (fun (l, rt) -> Rat.(l < x) && Rat.(x < rt)) model with
                | Some (l, _) -> l
                | None -> x))
        probes
      (* And the cardinality matches: merged runs collapse identically. *)
      && Interval_set.cardinal s = List.length model)

(* Closed-interval subtraction in the list model: each interval keeps
   its pieces strictly below [l] and strictly above [r]. *)
let model_remove intervals (l, rt) =
  List.concat_map
    (fun (l', r') ->
      List.filter
        (fun (a, b) -> Rat.(a < b))
        [ (l', Rat.min r' l); (Rat.max l' rt, r') ])
    intervals

let prop_iset_remove_matches_model =
  QCheck.Test.make ~name:"interval set add/remove agrees with naive model" ~count:300
    QCheck.(list_of_size Gen.(int_range 0 30) (pair bool arb_interval))
    (fun ops ->
      let s, model =
        List.fold_left
          (fun (s, model) (is_add, (l, rt)) ->
            if is_add then (Interval_set.add s ~left:l ~right:rt, model_add model (l, rt))
            else (Interval_set.remove s ~left:l ~right:rt, model_remove model (l, rt)))
          (Interval_set.empty, []) ops
      in
      let pairs = Interval_set.to_list s in
      List.length pairs = List.length model
      && List.for_all2
           (fun (a, b) (c, d) -> Rat.equal a c && Rat.equal b d)
           pairs model
      && Rat.equal (Interval_set.measure s)
           (List.fold_left (fun acc (l, rt) -> Rat.add acc (Rat.sub rt l)) Rat.zero model))

let suite =
  [
    Alcotest.test_case "heap basics" `Quick test_heap_basics;
    Alcotest.test_case "heap copy is independent" `Quick test_heap_copy;
    to_alcotest prop_heap_sorts;
    to_alcotest prop_heap_interleaved;
    Alcotest.test_case "interval merge on overlap" `Quick test_iset_merge_overlap;
    Alcotest.test_case "touching intervals stay separate" `Quick test_iset_touching_not_merged;
    Alcotest.test_case "open-interval boundaries" `Quick test_iset_boundaries;
    Alcotest.test_case "degenerate adds ignored" `Quick test_iset_degenerate_add;
    Alcotest.test_case "closed-interval removal" `Quick test_iset_remove;
    Alcotest.test_case "snapshots are persistent" `Quick test_iset_snapshot;
    to_alcotest prop_iset_matches_model;
    to_alcotest prop_iset_remove_matches_model;
  ]
