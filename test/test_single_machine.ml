module Rat = E2e_rat.Rat
module Sm = E2e_core.Single_machine
module Prng = E2e_prng.Prng
open Helpers

let job id release deadline = { Sm.id; release; deadline }

(* The canonical example showing plain EDF is not optimal for arbitrary
   release times: a long-window job released first grabs the machine and
   makes a tight later job miss; the forbidden region forces the machine
   to wait.  tau = 2; J0: r=0, d=10; J1: r=1, d=3. *)
let trap_instance () = [| job 0 (r 0) (r 10); job 1 (r 1) (r 3) |]

let test_plain_edf_fails_trap () =
  match Sm.edf_schedule_no_regions ~tau:(r 2) (trap_instance ()) with
  | Error (`Deadline_missed 1) -> ()
  | Error (`Deadline_missed i) -> Alcotest.failf "wrong job missed: %d" i
  | Ok _ -> Alcotest.fail "plain EDF should fail on the trap instance"

let test_regions_solve_trap () =
  let jobs = trap_instance () in
  match Sm.schedule ~tau:(r 2) jobs with
  | Error `Infeasible -> Alcotest.fail "trap instance is feasible"
  | Ok starts ->
      Alcotest.(check bool) "valid" true (Sm.feasible_starts ~tau:(r 2) jobs starts);
      (* J1 must run at time 1; J0 therefore cannot start in (-1, 1). *)
      check_rat "tight job at its release" (r 1) starts.(1)

let test_trap_regions () =
  match Sm.forbidden_regions ~tau:(r 2) (trap_instance ()) with
  | Error `Infeasible -> Alcotest.fail "feasible"
  | Ok regions ->
      Alcotest.(check bool) "some region before t=1" true
        (List.exists
           (fun { Sm.left; right } -> Rat.(left < r 1) && Rat.(right = r 1))
           regions)

let test_infeasible_detected () =
  (* Two unit jobs in one unit window. *)
  let jobs = [| job 0 (r 0) (r 1); job 1 (r 0) (r 1) |] in
  (match Sm.schedule ~tau:(r 1) jobs with
  | Error `Infeasible -> ()
  | Ok _ -> Alcotest.fail "should be infeasible");
  Alcotest.(check bool) "brute force agrees" false (Sm.brute_force_feasible ~tau:(r 1) jobs)

let test_empty_and_single () =
  (match Sm.schedule ~tau:(r 1) [||] with
  | Ok [||] -> ()
  | _ -> Alcotest.fail "empty instance");
  match Sm.schedule ~tau:(r 3) [| job 0 (r 5) (r 8) |] with
  | Ok starts -> check_rat "single job at release" (r 5) starts.(0)
  | Error _ -> Alcotest.fail "single job fits exactly"

let test_integral_release_edf_suffices () =
  (* With all parameters multiples of tau, no forbidden region is ever
     needed (the paper's "simply use classical EEDF" case). *)
  let jobs = [| job 0 (r 0) (r 4); job 1 (r 2) (r 6); job 2 (r 0) (r 8) |] in
  match Sm.forbidden_regions ~tau:(r 2) jobs with
  | Ok regions -> Alcotest.(check int) "no regions" 0 (List.length regions)
  | Error `Infeasible -> Alcotest.fail "feasible"

let test_schedule_matches_brute_force_on_example () =
  let jobs =
    [| job 0 (q "0.5") (r 4); job 1 (r 0) (q "2.5"); job 2 (r 1) (r 7); job 3 (r 3) (r 9) |]
  in
  let tau = r 2 in
  Alcotest.(check bool) "brute force feasible" true (Sm.brute_force_feasible ~tau jobs);
  match Sm.schedule ~tau jobs with
  | Ok starts -> Alcotest.(check bool) "valid" true (Sm.feasible_starts ~tau jobs starts)
  | Error `Infeasible -> Alcotest.fail "EEDF must find it"

(* Optimality property: on random small instances, EEDF-with-regions
   succeeds exactly when exhaustive search finds a feasible order; and
   whatever it outputs passes the independent validity check. *)
let random_jobs g n =
  Array.init n (fun id ->
      let release = Prng.rat_uniform g ~den:4 Rat.zero (r 6) in
      let window = Prng.rat_uniform g ~den:4 (r 2) (r 8) in
      { Sm.id; release; deadline = Rat.add release window })

let prop_optimality =
  QCheck.Test.make ~name:"single machine: EEDF+regions optimal vs brute force" ~count:400
    (QCheck.make
       ~print:(fun seed -> "seed " ^ string_of_int seed)
       QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let g = Prng.create seed in
      let n = 2 + Prng.int g 5 in
      let tau = Rat.make (2 + Prng.int g 7) 2 in
      let jobs = random_jobs g n in
      let exact = Sm.brute_force_feasible ~tau jobs in
      match Sm.schedule ~tau jobs with
      | Ok starts -> exact && Sm.feasible_starts ~tau jobs starts
      | Error `Infeasible -> not exact)

let prop_plain_edf_never_beats_exact =
  QCheck.Test.make ~name:"single machine: plain EDF sound (when it succeeds, valid)"
    ~count:300
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let g = Prng.create seed in
      let n = 2 + Prng.int g 5 in
      let tau = Rat.make (2 + Prng.int g 7) 2 in
      let jobs = random_jobs g n in
      match Sm.edf_schedule_no_regions ~tau jobs with
      | Ok starts -> Sm.feasible_starts ~tau jobs starts
      | Error (`Deadline_missed _) -> true)

let prop_regions_disjoint_sorted =
  QCheck.Test.make ~name:"single machine: forbidden regions sorted and disjoint" ~count:300
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let g = Prng.create seed in
      let n = 2 + Prng.int g 6 in
      let tau = Rat.make (2 + Prng.int g 7) 2 in
      let jobs = random_jobs g n in
      match Sm.forbidden_regions ~tau jobs with
      | Error `Infeasible -> true
      | Ok regions ->
          let rec ok = function
            | { Sm.left; right } :: ({ Sm.left = l2; _ } as r2) :: rest ->
                Rat.(left < right) && Rat.(right <= l2) && ok (r2 :: rest)
            | [ { Sm.left; right } ] -> Rat.(left < right)
            | [] -> true
          in
          ok regions)

(* {1 Incremental state} *)

(* The exactness contract: after any edit, the warm state's regions,
   schedule and verdict must be byte-identical to a from-scratch solve
   of the same (position-id'd) job set. *)
let reid jobs = Array.mapi (fun i (j : Sm.job) -> { j with Sm.id = i }) jobs

let agree ~what ~tau st jobs =
  let jobs = reid jobs in
  (match (Sm.Inc.regions st, Sm.forbidden_regions ~tau jobs) with
  | Error `Infeasible, Error `Infeasible -> ()
  | Ok inc, Ok scr ->
      Alcotest.(check bool)
        (what ^ ": regions agree")
        true
        (List.length inc = List.length scr
        && List.for_all2
             (fun (a : Sm.region) (b : Sm.region) ->
               Rat.equal a.left b.left && Rat.equal a.right b.right)
             inc scr)
  | _ -> Alcotest.failf "%s: regions verdicts disagree" what);
  match (Sm.Inc.solve st, Sm.schedule ~tau jobs) with
  | Error `Infeasible, Error `Infeasible -> ()
  | Ok inc, Ok scr ->
      Alcotest.(check bool)
        (what ^ ": schedules agree")
        true
        (Array.length inc = Array.length scr && Array.for_all2 Rat.equal inc scr)
  | _ -> Alcotest.failf "%s: schedule verdicts disagree" what

let test_inc_trap_add_remove () =
  let tau = r 2 in
  (* Start from the long-window job alone, then add the tight job: the
     warm state must discover the trap's forbidden region. *)
  let st = Sm.Inc.make ~tau [| job 0 (r 0) (r 10) |] in
  agree ~what:"base" ~tau st (Sm.Inc.jobs st);
  let st' = Sm.Inc.add_task st ~at:1 ~release:(r 1) ~deadline:(r 3) in
  agree ~what:"after add" ~tau st' (Sm.Inc.jobs st');
  (match Sm.Inc.solve st' with
  | Ok starts -> check_rat "tight job at its release" (r 1) starts.(1)
  | Error `Infeasible -> Alcotest.fail "trap instance is feasible");
  (* Persistence: the pre-add state still answers for the old set. *)
  Alcotest.(check int) "input state untouched" 1 (Sm.Inc.n_jobs st);
  agree ~what:"input state" ~tau st (Sm.Inc.jobs st);
  let st'' = Sm.Inc.remove_task st' ~at:1 in
  Alcotest.(check int) "back to one job" 1 (Sm.Inc.n_jobs st'');
  agree ~what:"after remove" ~tau st'' (Sm.Inc.jobs st'')

let test_inc_infeasibility_flips () =
  let tau = r 1 in
  let st = Sm.Inc.make ~tau [| job 0 (r 0) (r 1) |] in
  let st' = Sm.Inc.add_task st ~at:1 ~release:(r 0) ~deadline:(r 1) in
  (match Sm.Inc.solve st' with
  | Error `Infeasible -> ()
  | Ok _ -> Alcotest.fail "two unit jobs in one unit window");
  agree ~what:"infeasible state" ~tau st' (Sm.Inc.jobs st');
  (* Dropping either of the clashing jobs restores feasibility. *)
  match Sm.Inc.solve (Sm.Inc.remove_task st' ~at:0) with
  | Ok starts -> check_rat "survivor at release" (r 0) starts.(0)
  | Error `Infeasible -> Alcotest.fail "one unit job fits"

(* Random churn property: a chain of adds then drops, checked against
   from-scratch at every step (the unit-test-sized sibling of the
   eedf-inc fuzz class). *)
let prop_inc_matches_scratch =
  QCheck.Test.make ~name:"single machine: incremental matches from-scratch under churn"
    ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let g = Prng.create seed in
      let n = 2 + Prng.int g 6 in
      let tau = Rat.make (2 + Prng.int g 7) 2 in
      let jobs = random_jobs g n in
      let st = ref (Sm.Inc.make ~tau [| jobs.(0) |]) in
      let check what =
        let jobs = Sm.Inc.jobs !st in
        let scratch = Sm.schedule ~tau (reid jobs) in
        match (Sm.Inc.solve !st, scratch) with
        | Error `Infeasible, Error `Infeasible -> ()
        | Ok a, Ok b when Array.length a = Array.length b && Array.for_all2 Rat.equal a b ->
            ()
        | _ -> QCheck.Test.fail_reportf "diverged at %s" what
      in
      for k = 1 to n - 1 do
        let at = Prng.int g (Sm.Inc.n_jobs !st + 1) in
        st := Sm.Inc.add_task !st ~at ~release:jobs.(k).Sm.release ~deadline:jobs.(k).Sm.deadline;
        check (Printf.sprintf "add %d" k)
      done;
      while Sm.Inc.n_jobs !st > 1 do
        st := Sm.Inc.remove_task !st ~at:(Prng.int g (Sm.Inc.n_jobs !st));
        check "drop"
      done;
      true)

let suite =
  [
    Alcotest.test_case "plain EDF fails the trap" `Quick test_plain_edf_fails_trap;
    Alcotest.test_case "regions solve the trap" `Quick test_regions_solve_trap;
    Alcotest.test_case "trap yields a region" `Quick test_trap_regions;
    Alcotest.test_case "infeasibility detected" `Quick test_infeasible_detected;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_single;
    Alcotest.test_case "grid-aligned needs no regions" `Quick test_integral_release_edf_suffices;
    Alcotest.test_case "worked example" `Quick test_schedule_matches_brute_force_on_example;
    Alcotest.test_case "incremental: trap add/remove" `Quick test_inc_trap_add_remove;
    Alcotest.test_case "incremental: feasibility flips" `Quick test_inc_infeasibility_flips;
    to_alcotest prop_optimality;
    to_alcotest prop_plain_edf_never_beats_exact;
    to_alcotest prop_regions_disjoint_sorted;
    to_alcotest prop_inc_matches_scratch;
  ]
