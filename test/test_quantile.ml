(* The shared quantile sketch: bucket geometry, the nearest-rank rule,
   lossless merging, the documented error bound against exact sorted
   quantiles, and cross-domain aggregation through the Obs registry. *)

module Quantile = E2e_obs.Quantile
module Obs = E2e_obs.Obs
module Pool = E2e_exec.Pool

let check_float = Alcotest.(check (float 0.))

(* Exact nearest-rank quantile on a sorted array, the same
   [rank = ceil (q * (n - 1))] rule the sketch documents. *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int (n - 1))) in
    sorted.(rank)

let test_bucket_boundaries () =
  (* Default alpha 0.01 -> 50 sub-buckets per octave; the octave [1, 2)
     starts with the bucket [1.0, 1.02). *)
  let q = Quantile.create () in
  Quantile.observe q 1.0;
  Quantile.observe q 1.019;
  Quantile.observe q 1.02;
  (match Quantile.buckets q with
  | [ (lo1, hi1, c1); (lo2, _, c2) ] ->
      check_float "first bucket lower bound" 1.0 lo1;
      check_float "first bucket upper bound" 1.02 hi1;
      Alcotest.(check int) "1.0 and 1.019 share a bucket" 2 c1;
      check_float "1.02 opens the next bucket" 1.02 lo2;
      Alcotest.(check int) "next bucket holds one" 1 c2
  | bs -> Alcotest.failf "expected 2 buckets, got %d" (List.length bs));
  (* Every occupied bucket has relative width <= 2 alpha and contains
     what its bounds claim. *)
  let wide = Quantile.create () in
  let g = E2e_prng.Prng.create 7 in
  for _ = 1 to 1000 do
    Quantile.observe wide (Float.ldexp (E2e_prng.Prng.float g 1.0 +. 0.5)
                             (E2e_prng.Prng.int g 40 - 20))
  done;
  List.iter
    (fun (lo, hi, count) ->
      Alcotest.(check bool) "bucket non-empty" true (count > 0);
      Alcotest.(check bool) "bucket ordered" true (lo < hi);
      Alcotest.(check bool)
        (Printf.sprintf "relative width at [%g, %g)" lo hi)
        true
        ((hi -. lo) /. lo <= 2. *. Quantile.alpha wide +. 1e-12))
    (Quantile.buckets wide)

let test_zero_and_special_values () =
  let q = Quantile.create () in
  Quantile.observe q 0.;
  Quantile.observe q (-3.);
  Quantile.observe q Float.nan;
  Quantile.observe q Float.infinity;
  Alcotest.(check int) "all land in the zero bucket" 4 (Quantile.zeros q);
  Alcotest.(check int) "all counted" 4 (Quantile.count q);
  check_float "zero bucket reports exactly zero" 0. (Quantile.quantile q 1.0);
  Alcotest.(check (list (triple (float 0.) (float 0.) int)))
    "no positive buckets" [] (Quantile.buckets q);
  let empty = Quantile.create () in
  check_float "empty sketch quantile" 0. (Quantile.quantile empty 0.5);
  check_float "empty sketch min" 0. (Quantile.min_value empty);
  check_float "empty sketch max" 0. (Quantile.max_value empty)

(* Pinned outputs on fixed samples: the sketch is exact float
   arithmetic, so these literals must reproduce everywhere (this is what
   lets make check diff e2e-trace summaries against a golden file). *)
let test_pinned_regression () =
  let q = Quantile.create () in
  for i = 1 to 100 do
    Quantile.observe q (float_of_int i)
  done;
  check_float "p0" 1.01 (Quantile.quantile q 0.);
  check_float "p50" 50.880000000000003 (Quantile.quantile q 0.5);
  check_float "p90" 91.519999999999996 (Quantile.quantile q 0.9);
  check_float "p95" 96.640000000000001 (Quantile.quantile q 0.95);
  check_float "p99" 100.48 (Quantile.quantile q 0.99);
  check_float "p100" 100.48 (Quantile.quantile q 1.0);
  check_float "exact min retained" 1.0 (Quantile.min_value q);
  check_float "exact max retained" 100.0 (Quantile.max_value q);
  check_float "exact sum retained" 5050.0 (Quantile.sum q);
  (* The loadgen-style latency sample that used to go through the ad-hoc
     sorted-array percentile function. *)
  let lat = Quantile.create () in
  List.iter (Quantile.observe lat)
    [ 0.004; 0.0041; 0.0075; 0.012; 0.0009; 0.0303; 0.0016 ];
  check_float "latency p50" 0.0041015625000000002 (Quantile.quantile lat 0.5);
  check_float "latency p95" 0.030156249999999999 (Quantile.quantile lat 0.95)

let sketch_of values =
  let q = Quantile.create () in
  List.iter (Quantile.observe q) values;
  q

let assert_same_quantiles label a b =
  Alcotest.(check int) (label ^ ": count") (Quantile.count a) (Quantile.count b);
  Alcotest.(check int) (label ^ ": zeros") (Quantile.zeros a) (Quantile.zeros b);
  List.iter
    (fun p ->
      check_float
        (Printf.sprintf "%s: q%.2f" label p)
        (Quantile.quantile a p) (Quantile.quantile b p))
    [ 0.; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ]

let test_merge () =
  let xs = List.init 40 (fun i -> float_of_int (i + 1) *. 0.37)
  and ys = List.init 25 (fun i -> float_of_int (i + 1) *. 2.11)
  and zs = [ 0.; 5.; 500.; 0.25 ] in
  let a = sketch_of xs and b = sketch_of ys and c = sketch_of zs in
  (* Associative and commutative. *)
  assert_same_quantiles "associativity"
    (Quantile.merge (Quantile.merge a b) c)
    (Quantile.merge a (Quantile.merge b c));
  assert_same_quantiles "commutativity" (Quantile.merge a b) (Quantile.merge b a);
  (* Lossless: merged = sketch of the concatenated sample. *)
  assert_same_quantiles "merge equals concatenation"
    (Quantile.merge (Quantile.merge a b) c)
    (sketch_of (xs @ ys @ zs));
  (* Inputs unchanged, result fresh. *)
  Alcotest.(check int) "left operand untouched" (List.length xs) (Quantile.count a);
  (* Mixed alpha is a programming error. *)
  Alcotest.check_raises "alpha mismatch rejected"
    (Invalid_argument "Quantile.merge: incompatible sketches (different alpha)")
    (fun () ->
      ignore (Quantile.merge a (Quantile.create ~alpha:0.05 ())))

(* Property: for positive samples the sketch quantile is within the
   documented relative error of the exact nearest-rank quantile. *)
let prop_error_bound =
  QCheck.Test.make ~count:200 ~name:"quantile within alpha of exact"
    QCheck.(pair (list_of_size Gen.(1 -- 200) (float_bound_exclusive 1000.))
              (float_bound_inclusive 1.0))
    (fun (raw, p) ->
      let values = List.map (fun v -> Float.abs v +. 1e-6) raw in
      let q = sketch_of values in
      let sorted = Array.of_list values in
      Array.sort Float.compare sorted;
      let exact = exact_quantile sorted p in
      let est = Quantile.quantile q p in
      Float.abs (est -. exact) <= (Quantile.alpha q +. 1e-12) *. exact)

(* Worker domains observe into per-domain Obs stores; the registry merge
   at read time must see every observation exactly once. *)
let test_domain_safety () =
  Fun.protect
    ~finally:(fun () ->
      Obs.set_stats false;
      Obs.reset_metrics ())
    (fun () ->
      Obs.set_stats true;
      Obs.reset_metrics ();
      let items = Array.init 400 (fun i -> float_of_int (i + 1)) in
      ignore
        (Pool.map ~jobs:4
           (fun v ->
             Obs.observe "pool.latency" v;
             v)
           items);
      match List.assoc_opt "pool.latency" (Obs.sketches ()) with
      | None -> Alcotest.fail "merged sketch missing"
      | Some q ->
          Alcotest.(check int) "every observation merged once" 400 (Quantile.count q);
          check_float "sum survives the merge" 80200. (Quantile.sum q);
          check_float "max survives the merge" 400. (Quantile.max_value q))

let suite =
  [
    Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
    Alcotest.test_case "zero and special values" `Quick test_zero_and_special_values;
    Alcotest.test_case "pinned regression outputs" `Quick test_pinned_regression;
    Alcotest.test_case "merge" `Quick test_merge;
    QCheck_alcotest.to_alcotest prop_error_bound;
    Alcotest.test_case "domain safety via Obs registry" `Quick test_domain_safety;
  ]
