module Rat = E2e_rat.Rat
module Obs = E2e_obs.Obs
module Json = E2e_obs.Json
module Prng = E2e_prng.Prng
module Gen = E2e_workload.Feasible_gen
module Paper = E2e_workload.Paper_instances
module Algo_h = E2e_core.Algo_h
module Solver = E2e_core.Solver
module Schedule = E2e_schedule.Schedule

(* Leave the global telemetry state exactly as we found it, whatever the
   test body does — other suites rely on telemetry being off. *)
let with_clean_obs f =
  Fun.protect
    ~finally:(fun () ->
      Obs.uninstall ();
      Obs.set_stats false;
      Obs.reset_metrics ();
      Obs.Clock.use_wall_clock ())
    f

(* A hand-cranked clock: every read advances by [step] seconds. *)
let install_fake_clock ?(step = 0.5) () =
  let t = ref 0.0 in
  Obs.Clock.set_source (fun () ->
      let v = !t in
      t := v +. step;
      v)

let test_span_nesting () =
  with_clean_obs @@ fun () ->
  install_fake_clock ();
  let sink, events = Obs.Sink.memory () in
  Obs.install sink;
  let r =
    Obs.span "outer" (fun () ->
        Obs.event "mark" ~fields:[ ("x", Obs.Int 1) ];
        Obs.span "inner" (fun () -> 41) + 1)
  in
  Alcotest.(check int) "span returns the body's value" 42 r;
  let es = events () in
  let names = List.map (fun (e : Obs.event) -> e.name) es in
  Alcotest.(check (list string))
    "event order" [ "outer"; "mark"; "inner"; "inner"; "outer" ] names;
  (match es with
  | [ ob; mark; ib; ie; oe ] ->
      Alcotest.(check bool) "outer begins" true (ob.kind = Obs.Span_begin);
      Alcotest.(check bool) "mark is instant" true (mark.kind = Obs.Instant);
      Alcotest.(check int) "outer at depth 0" 0 ob.depth;
      Alcotest.(check int) "mark inside outer" 1 mark.depth;
      Alcotest.(check int) "inner inside outer" 1 ib.depth;
      (match (ie.kind, oe.kind) with
      | Obs.Span_end di, Obs.Span_end d_o ->
          Alcotest.(check bool) "durations positive" true (di > 0.0 && d_o > 0.0);
          Alcotest.(check bool) "outer lasts at least as long as inner" true (d_o >= di)
      | _ -> Alcotest.fail "expected two span ends");
      (* Timestamps never go backwards. *)
      let ts = List.map (fun (e : Obs.event) -> e.ts) es in
      Alcotest.(check bool) "timestamps non-decreasing" true
        (List.sort compare ts = ts)
  | _ -> Alcotest.fail "expected exactly 5 events")

let test_span_exception_safe () =
  with_clean_obs @@ fun () ->
  let sink, events = Obs.Sink.memory () in
  Obs.install sink;
  (try Obs.span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  let es = events () in
  Alcotest.(check int) "begin and end emitted despite the raise" 2 (List.length es);
  (* Depth unwound: a following top-level event sits at depth 0. *)
  Obs.event "after";
  match List.rev (events ()) with
  | e :: _ -> Alcotest.(check int) "depth restored" 0 e.depth
  | [] -> Alcotest.fail "no events"

let test_counters () =
  with_clean_obs @@ fun () ->
  Obs.set_stats true;
  Obs.reset_metrics ();
  Obs.incr "c";
  Obs.incr "c" ~by:4;
  Obs.incr "other";
  Obs.gauge "g" 2.5;
  Obs.gauge "g" 3.5;
  Obs.observe "h" 1.0;
  Obs.observe "h" 3.0;
  Alcotest.(check int) "counter accumulates" 5 (Obs.counter_value "c");
  Alcotest.(check int) "independent counter" 1 (Obs.counter_value "other");
  Alcotest.(check int) "unknown counter is 0" 0 (Obs.counter_value "nope");
  Alcotest.(check (list (pair string int)))
    "counters sorted by name"
    [ ("c", 5); ("other", 1) ]
    (Obs.counters ());
  (match Obs.gauges () with
  | [ ("g", v) ] -> Alcotest.(check (float 0.0)) "gauge keeps latest" 3.5 v
  | _ -> Alcotest.fail "expected one gauge");
  (match Obs.histograms () with
  | [ ("h", h) ] ->
      Alcotest.(check int) "histogram count" 2 h.Obs.count;
      Alcotest.(check (float 1e-9)) "histogram sum" 4.0 h.Obs.sum;
      Alcotest.(check (float 0.0)) "histogram min" 1.0 h.Obs.min;
      Alcotest.(check (float 0.0)) "histogram max" 3.0 h.Obs.max
  | _ -> Alcotest.fail "expected one histogram");
  Obs.reset_metrics ();
  Alcotest.(check int) "reset zeroes counters" 0 (Obs.counter_value "c");
  Alcotest.(check bool) "reset clears registry" true (Obs.counters () = [])

let test_disabled_is_inert () =
  with_clean_obs @@ fun () ->
  Obs.set_stats false;
  Obs.reset_metrics ();
  Obs.incr "ghost";
  Obs.gauge "ghost" 1.0;
  Obs.observe "ghost" 1.0;
  Alcotest.(check bool) "no sink, no stats" false (Obs.enabled ());
  Alcotest.(check int) "counter ignored while off" 0 (Obs.counter_value "ghost");
  Alcotest.(check bool) "registry untouched" true
    (Obs.counters () = [] && Obs.gauges () = [] && Obs.histograms () = [])

let test_json_roundtrip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Num 0.0;
      Json.Num (-17.0);
      Json.Num 3.141592653589793;
      Json.Num 1e300;
      Json.Str "plain";
      Json.Str "quotes \" and \\ and \ncontrol\tchars";
      Json.List [ Json.Num 1.0; Json.Str "two"; Json.Null ];
      Json.Obj [ ("a", Json.int 1); ("nested", Json.Obj [ ("b", Json.List [] ) ]) ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      match Json.of_string s with
      | Ok v' -> Alcotest.(check string) ("round trip of " ^ s) s (Json.to_string v')
      | Error msg -> Alcotest.failf "failed to parse %s: %s" s msg)
    cases;
  (* Integral floats print as JSON integers. *)
  Alcotest.(check string) "integral float prints as int" "7" (Json.to_string (Json.Num 7.0));
  (* Malformed input is an error, not an exception. *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "parsed malformed input %S" s
      | Error _ -> ())
    [ "{"; "[1,"; "\"unterminated"; "truffle"; "{\"a\" 1}"; "1 2" ]

let run_solver_under_sink make_sink =
  let path = Filename.temp_file "e2e_obs_test" ".json" in
  let oc = open_out path in
  Obs.install (make_sink oc);
  let shop = Paper.table3 () in
  ignore (Algo_h.schedule shop);
  let g = Prng.create 11 in
  ignore
    (E2e_sim.Preemptive_flow_sim.run
       (E2e_model.Recurrence_shop.of_traditional
          (Gen.generate g
             {
               Gen.n_tasks = 4;
               n_processors = 3;
               mean_tau = 1.0;
               stdev = 0.3;
               slack_factor = 1.0;
             })));
  Obs.uninstall ();
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  contents

let test_jsonl_sink_roundtrip () =
  with_clean_obs @@ fun () ->
  let contents = run_solver_under_sink Obs.Sink.jsonl in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' contents)
  in
  Alcotest.(check bool) "emitted at least a span and some events" true
    (List.length lines > 5);
  let seen_types = Hashtbl.create 8 in
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error msg -> Alcotest.failf "bad JSONL line %S: %s" line msg
      | Ok v -> (
          (match Json.member "ts" v with
          | Some (Json.Num _) -> ()
          | _ -> Alcotest.failf "line without numeric ts: %s" line);
          (match Json.member "name" v with
          | Some (Json.Str _) -> ()
          | _ -> Alcotest.failf "line without name: %s" line);
          match Json.member "type" v with
          | Some (Json.Str t) -> Hashtbl.replace seen_types t ()
          | _ -> Alcotest.failf "line without type: %s" line))
    lines;
  List.iter
    (fun t ->
      Alcotest.(check bool) (t ^ " records present") true (Hashtbl.mem seen_types t))
    [ "span_begin"; "span_end"; "event" ]

let test_chrome_sink_valid () =
  with_clean_obs @@ fun () ->
  let contents = run_solver_under_sink Obs.Sink.chrome in
  match Json.of_string contents with
  | Error msg -> Alcotest.failf "chrome trace is not valid JSON: %s" msg
  | Ok (Json.List records) ->
      Alcotest.(check bool) "trace is non-empty" true (records <> []);
      let phases = Hashtbl.create 4 in
      List.iter
        (fun r ->
          (match Json.member "name" r with
          | Some (Json.Str _) -> ()
          | _ -> Alcotest.fail "record without name");
          (match Json.member "ts" r with
          | Some (Json.Num ts) ->
              Alcotest.(check bool) "microsecond ts non-negative" true (ts >= 0.0)
          | _ -> Alcotest.fail "record without ts");
          (match (Json.member "pid" r, Json.member "tid" r) with
          | Some (Json.Num _), Some (Json.Num _) -> ()
          | _ -> Alcotest.fail "record without pid/tid");
          match Json.member "ph" r with
          | Some (Json.Str ph) -> Hashtbl.replace phases ph ()
          | _ -> Alcotest.fail "record without ph")
        records;
      Alcotest.(check bool) "has span begins and ends" true
        (Hashtbl.mem phases "B" && Hashtbl.mem phases "E")
  | Ok _ -> Alcotest.fail "chrome trace should be a JSON array"

(* The acceptance guard: telemetry must never change what a solver
   computes.  Compare schedules field by field with exact rationals. *)
let same_schedule (a : Schedule.t) (b : Schedule.t) =
  let same_matrix x y =
    Array.length x = Array.length y
    && Array.for_all2 (fun r1 r2 -> Array.for_all2 Rat.equal r1 r2) x y
  in
  same_matrix a.Schedule.starts b.Schedule.starts

let test_determinism_guard () =
  let g = Prng.create 2024 in
  let shops =
    Paper.table3 ()
    :: List.init 20 (fun _ ->
           Gen.generate g
             {
               Gen.n_tasks = 5;
               n_processors = 4;
               mean_tau = 1.0;
               stdev = 0.4;
               slack_factor = 0.9;
             })
  in
  let outcome shop =
    match Solver.solve shop with
    | Solver.Feasible (s, which) -> `Feasible (s, which)
    | Solver.Proved_infeasible r -> `Infeasible r
    | Solver.Heuristic_failed -> `Failed
  in
  let quiet = List.map outcome shops in
  let noisy =
    with_clean_obs (fun () ->
        let sink, _ = Obs.Sink.memory () in
        Obs.install sink;
        Obs.set_stats true;
        List.map outcome shops)
  in
  List.iter2
    (fun q n ->
      match (q, n) with
      | `Feasible (s1, w1), `Feasible (s2, w2) ->
          Alcotest.(check bool) "same algorithm chosen" true (w1 = w2);
          Alcotest.(check bool) "bit-identical schedule" true (same_schedule s1 s2)
      | `Infeasible _, `Infeasible _ | `Failed, `Failed -> ()
      | _ -> Alcotest.fail "telemetry changed a solver verdict")
    quiet noisy

let suite =
  [
    Alcotest.test_case "span nesting, depth and timing" `Quick test_span_nesting;
    Alcotest.test_case "span is exception-safe" `Quick test_span_exception_safe;
    Alcotest.test_case "counter/gauge/histogram arithmetic" `Quick test_counters;
    Alcotest.test_case "disabled telemetry is inert" `Quick test_disabled_is_inert;
    Alcotest.test_case "json encode/parse round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "jsonl sink emits parseable lines" `Quick test_jsonl_sink_roundtrip;
    Alcotest.test_case "chrome sink emits valid trace json" `Quick test_chrome_sink_valid;
    Alcotest.test_case "telemetry never changes results" `Quick test_determinism_guard;
  ]
