(* The cluster layer: consistent-hash routing (stickiness, balance,
   failover order), registry membership and liveness round-trips,
   metrics relabeling, and the dispatcher end to end — two in-process
   shards behind a TCP front end, with ctl/1 registration, a mid-run
   shard kill, and reply-order preservation under cross-shard
   pipelining. *)

module Registry = E2e_cluster.Registry
module Dispatcher = E2e_cluster.Dispatcher
module Health = E2e_cluster.Health
module Batcher = E2e_serve.Batcher
module Server = E2e_serve.Server

(* ------------------------------------------------------------------ *)
(* Registry unit tests                                                *)

let shards n = List.init n (fun i -> ("127.0.0.1", 7071 + i))
let id i = Printf.sprintf "127.0.0.1:%d" (7071 + i)
let shop k = Printf.sprintf "shop-%d" k

let test_parse_id () =
  Alcotest.(check (option (pair string int)))
    "host:port" (Some ("10.0.0.1", 7070))
    (Registry.parse_id "10.0.0.1:7070");
  Alcotest.(check (option (pair string int)))
    "last colon wins" (Some ("a:b", 9))
    (Registry.parse_id "a:b:9");
  List.iter
    (fun bad ->
      Alcotest.(check (option (pair string int))) bad None (Registry.parse_id bad))
    [ "no-port"; ":7070"; "h:"; "h:0"; "h:65536"; "h:x" ];
  Alcotest.(check string) "id_of round-trips" "h:7070" (Registry.id_of ~host:"h" ~port:7070)

let test_routing_sticky () =
  let t = Registry.create (shards 4) in
  for k = 0 to 199 do
    let s = shop k in
    match (Registry.route t s, Registry.home t s) with
    | Some r, Some h ->
        Alcotest.(check string) "route = home when all live" h.Registry.id r.Registry.id;
        (* Stable under repetition and membership no-ops. *)
        let r2 = Option.get (Registry.route t s) in
        Alcotest.(check string) "route is deterministic" r.Registry.id r2.Registry.id
    | _ -> Alcotest.fail "route/home returned None with live shards"
  done;
  (* A second registry over the same membership routes identically. *)
  let t' = Registry.create (shards 4) in
  for k = 0 to 199 do
    let s = shop k in
    Alcotest.(check string) "routing is a pure function of membership"
      (Option.get (Registry.route t s)).Registry.id
      (Option.get (Registry.route t' s)).Registry.id
  done

let test_routing_balance () =
  List.iter
    (fun n ->
      let t = Registry.create (shards n) in
      let counts = Hashtbl.create n in
      let total = 1000 in
      for k = 0 to total - 1 do
        let e = Option.get (Registry.route t (shop k)) in
        Hashtbl.replace counts e.Registry.id
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts e.Registry.id))
      done;
      (* Every shard owns a non-trivial share: at least half its fair
         share of 1000 shops (deterministic — fixed ids and shops). *)
      let floor = total / n / 2 in
      for i = 0 to n - 1 do
        let c = Option.value ~default:0 (Hashtbl.find_opt counts (id i)) in
        if c < floor then
          Alcotest.failf "%d-shard ring: %s owns %d/%d shops (< %d)" n (id i) c total floor
      done)
    [ 2; 4; 8 ]

let test_failover_order () =
  let t = Registry.create (shards 4) in
  let homes = Array.init 200 (fun k -> (Option.get (Registry.home t (shop k))).Registry.id) in
  (* Kill shard 0: its shops move, every other shop stays put. *)
  Alcotest.(check bool) "report_down flips state" true (Registry.report_down t (id 0));
  Alcotest.(check bool) "report_down is idempotent" false (Registry.report_down t (id 0));
  let moved = ref 0 in
  for k = 0 to 199 do
    let r = (Option.get (Registry.route t (shop k))).Registry.id in
    if homes.(k) = id 0 then begin
      incr moved;
      if r = id 0 then Alcotest.failf "shop %d still routed to the dead shard" k
    end
    else Alcotest.(check string) "unaffected shop did not move" homes.(k) r
  done;
  Alcotest.(check bool) "the dead shard owned some shops" true (!moved > 0);
  let s = Registry.stats t in
  Alcotest.(check int) "deaths counted" 1 s.Registry.deaths;
  Alcotest.(check int) "failovers counted" !moved s.Registry.failovers;
  (* Revival sends every shop home. *)
  Alcotest.(check bool) "probe ok revives" true
    (Registry.note_probe t (id 0) ~ok:true = `Revived);
  for k = 0 to 199 do
    Alcotest.(check string) "shop back home after revival" homes.(k)
      (Option.get (Registry.route t (shop k))).Registry.id
  done

let test_probe_threshold () =
  let t = Registry.create ~fail_threshold:3 (shards 2) in
  Alcotest.(check bool) "1st failure below threshold" true
    (Registry.note_probe t (id 0) ~ok:false = `Unchanged);
  Alcotest.(check bool) "2nd failure below threshold" true
    (Registry.note_probe t (id 0) ~ok:false = `Unchanged);
  Alcotest.(check bool) "3rd consecutive failure kills" true
    (Registry.note_probe t (id 0) ~ok:false = `Died);
  Alcotest.(check bool) "one success revives" true
    (Registry.note_probe t (id 0) ~ok:true = `Revived);
  (* A success resets the consecutive-failure counter. *)
  ignore (Registry.note_probe t (id 0) ~ok:false);
  ignore (Registry.note_probe t (id 0) ~ok:true);
  Alcotest.(check bool) "counter reset by success" true
    (Registry.note_probe t (id 0) ~ok:false = `Unchanged);
  Alcotest.(check bool) "unknown shard reported" true
    (Registry.note_probe t "nope:1" ~ok:false = `Unknown)

let test_membership_roundtrip () =
  let t = Registry.create (shards 2) in
  Alcotest.(check bool) "fresh add" true (Registry.add t ~host:"127.0.0.1" ~port:7073 = `Added);
  Alcotest.(check bool) "re-add is Already" true
    (Registry.add t ~host:"127.0.0.1" ~port:7073 = `Already);
  Alcotest.(check int) "three members" 3 (Registry.stats t).Registry.shards;
  (* The new shard takes ownership of some shops... *)
  let owned = ref 0 in
  for k = 0 to 399 do
    if (Option.get (Registry.route t (shop k))).Registry.id = id 2 then incr owned
  done;
  Alcotest.(check bool) "new shard owns shops" true (!owned > 0);
  (* ...and removing it hands exactly those shops back: the 2-shard
     routing is restored verbatim. *)
  let t2 = Registry.create (shards 2) in
  Alcotest.(check bool) "remove known" true (Registry.remove t (id 2));
  Alcotest.(check bool) "remove unknown" false (Registry.remove t (id 2));
  for k = 0 to 399 do
    Alcotest.(check string) "membership round-trip restores routing"
      (Option.get (Registry.route t2 (shop k))).Registry.id
      (Option.get (Registry.route t (shop k))).Registry.id
  done;
  (* No live shard at all: route must answer None, not spin. *)
  ignore (Registry.report_down t (id 0));
  ignore (Registry.report_down t (id 1));
  Alcotest.(check bool) "no live shard routes None" true (Registry.route t "x" = None)

let test_relabel () =
  Alcotest.(check string) "bare name"
    "serve_requests_total{shard=\"127.0.0.1:7071\"} 42"
    (Dispatcher.relabel ~shard:"127.0.0.1:7071" "serve_requests_total 42");
  Alcotest.(check string) "existing labels"
    "bucket{shard=\"s1\",le=\"0.5\"} 7"
    (Dispatcher.relabel ~shard:"s1" "bucket{le=\"0.5\"} 7");
  Alcotest.(check string) "quotes escaped"
    "m{shard=\"a\\\"b\"} 1"
    (Dispatcher.relabel ~shard:"a\"b" "m 1");
  Alcotest.(check string) "non-exposition line passes through" "garbage"
    (Dispatcher.relabel ~shard:"s" "garbage")

(* ------------------------------------------------------------------ *)
(* End-to-end: in-process shards behind a TCP dispatcher              *)

type shard = { sport : int; sctl : Server.control; sdomain : unit Domain.t }

let wait_port () =
  let mu = Mutex.create () and cv = Condition.create () and port = ref 0 in
  let set p =
    Mutex.lock mu;
    port := p;
    Condition.signal cv;
    Mutex.unlock mu
  in
  let get () =
    Mutex.lock mu;
    while !port = 0 do
      Condition.wait cv mu
    done;
    let p = !port in
    Mutex.unlock mu;
    p
  in
  (set, get)

let spawn_shard () =
  let config = { Batcher.default_config with Batcher.jobs = 1; queue_capacity = 4096 } in
  let stripes = E2e_serve.Stripes.create ~config () in
  let sctl = Server.control () in
  let set, get = wait_port () in
  let sdomain =
    Domain.spawn (fun () ->
        (* Room for two persistent upstream lanes plus a transient
           probe and a metrics RPC at once. *)
        Server.serve_tcp ~schedules:false ~accept_pool:4 ~window:64 ~control:sctl
          ~ready:set ~port:0 stripes)
  in
  { sport = get (); sctl; sdomain }

(* Two live shards behind a dispatcher with a fast status checker;
   [f] gets the client-facing port and the dispatcher handle. *)
let with_cluster ?(upstream_conns = 1) f =
  let s0 = spawn_shard () and s1 = spawn_shard () in
  let config =
    { Dispatcher.default_config with probe_interval = 0.1; probe_timeout = 1.0;
      upstream_conns }
  in
  let t =
    Dispatcher.create ~config [ ("127.0.0.1", s0.sport); ("127.0.0.1", s1.sport) ]
  in
  let set, get = wait_port () in
  let ddomain = Domain.spawn (fun () -> Dispatcher.serve ~accept_pool:3 ~ready:set ~port:0 t) in
  let finish () =
    Dispatcher.shutdown t;
    Domain.join ddomain;
    List.iter
      (fun s ->
        Server.shutdown s.sctl;
        Domain.join s.sdomain)
      [ s0; s1 ]
  in
  match f (get ()) t (s0, s1) with
  | r ->
      finish ();
      r
  | exception e ->
      finish ();
      raise e

(* A raw pipelined client: connect, read the greeting, expose line
   send/recv over buffered channels. *)
type client = { cfd : Unix.file_descr; cic : in_channel; coc : out_channel }

let client_connect port =
  let cfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect cfd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float cfd Unix.SO_RCVTIMEO 10.0;
  let cic = Unix.in_channel_of_descr cfd and coc = Unix.out_channel_of_descr cfd in
  let greeting = input_line cic in
  Alcotest.(check string) "dispatcher greeting" Dispatcher.greeting greeting;
  { cfd; cic; coc }

let client_send c lines =
  List.iter
    (fun l ->
      output_string c.coc l;
      output_char c.coc '\n')
    lines;
  flush c.coc

let client_recv c n = List.init n (fun _ -> input_line c.cic)
let client_close c = try Unix.close c.cfd with Unix.Unix_error _ -> ()

(* Shop names homed on a specific shard (by dispatcher registry). *)
let shops_on t ~shard_id ~n =
  let reg = Dispatcher.registry t in
  let rec go acc k =
    if List.length acc >= n then List.rev acc
    else
      let s = Printf.sprintf "es-%d" k in
      let acc =
        match Registry.home reg s with
        | Some e when e.Registry.id = shard_id -> s :: acc
        | _ -> acc
      in
      go acc (k + 1)
  in
  go [] 0

let test_e2e_sticky_and_order () =
  with_cluster (fun port t (s0, s1) ->
      let id0 = Registry.id_of ~host:"127.0.0.1" ~port:s0.sport in
      let id1 = Registry.id_of ~host:"127.0.0.1" ~port:s1.sport in
      (* Interleave queries for shops homed on both shards, pipelined
         in one burst: replies must come back in request order. *)
      let on0 = shops_on t ~shard_id:id0 ~n:8 and on1 = shops_on t ~shard_id:id1 ~n:8 in
      let interleaved = List.concat_map (fun (a, b) -> [ a; b ]) (List.combine on0 on1) in
      let c = client_connect port in
      client_send c (List.map (fun s -> "query " ^ s) interleaved);
      let replies = client_recv c (List.length interleaved) in
      List.iter2
        (fun s reply ->
          Alcotest.(check string) "reply order matches request order"
            (Printf.sprintf "info shop=%s unknown" s)
            reply)
        interleaved replies;
      (* Both shards took traffic, and repeating the burst keeps every
         shop on its shard (stickiness = per-shard counts just double). *)
      let per_shard () =
        List.map
          (fun s -> (s.Dispatcher.shard_id, s.Dispatcher.shard_routed))
          (Dispatcher.stats t).Dispatcher.per_shard
      in
      let counts1 = per_shard () in
      Alcotest.(check int) "both shards saw traffic" 2 (List.length counts1);
      Alcotest.(check (list (pair string int))) "balanced interleave"
        (List.sort compare [ (id0, 8); (id1, 8) ])
        (List.sort compare counts1);
      client_send c (List.map (fun s -> "query " ^ s) interleaved);
      ignore (client_recv c (List.length interleaved));
      List.iter2
        (fun (id, n) (id', n') ->
          Alcotest.(check string) "same shard set" id id';
          Alcotest.(check int) "every shop re-routed to its shard" (2 * n) n')
        counts1 (per_shard ());
      client_send c [ "quit" ];
      Alcotest.(check string) "quit answered" "bye" (input_line c.cic);
      client_close c)

let test_e2e_ctl_roundtrip () =
  with_cluster (fun port t (s0, s1) ->
      let id0 = Registry.id_of ~host:"127.0.0.1" ~port:s0.sport in
      let id1 = Registry.id_of ~host:"127.0.0.1" ~port:s1.sport in
      let c = client_connect port in
      (* Register a third (fictitious, but never routed-to) shard and
         make sure it shows up, then deregister and make sure it is
         gone.  Probe interval is 0.1s, so pick the assertions that
         hold regardless of its probed liveness. *)
      client_send c [ "ctl/1 shards" ];
      Alcotest.(check string) "initial membership"
        (Printf.sprintf "ok shards %s"
           (String.concat ","
              (List.map (fun i -> i ^ "=live") (List.sort compare [ id0; id1 ]))))
        (input_line c.cic);
      client_send c [ "ctl/1 register 127.0.0.1:1" ];
      Alcotest.(check string) "register reply" "ok registered 127.0.0.1:1 shards=3"
        (input_line c.cic);
      Alcotest.(check bool) "registered shard visible" true
        (Registry.find_opt (Dispatcher.registry t) "127.0.0.1:1" <> None);
      client_send c [ "ctl/1 deregister 127.0.0.1:1" ];
      Alcotest.(check string) "deregister reply" "ok deregistered 127.0.0.1:1 shards=2"
        (input_line c.cic);
      Alcotest.(check bool) "deregistered shard gone" true
        (Registry.find_opt (Dispatcher.registry t) "127.0.0.1:1" = None);
      client_send c [ "ctl/1 deregister 127.0.0.1:1" ];
      Alcotest.(check string) "double deregister errors"
        "error unknown shard 127.0.0.1:1" (input_line c.cic);
      client_send c [ "ctl/1 bogus"; "ctl/2 shards" ];
      Alcotest.(check string) "unknown ctl command" "error ctl unknown command \"bogus\""
        (input_line c.cic);
      Alcotest.(check string) "unsupported ctl version"
        "error unsupported control version ctl/2 (want ctl/1)" (input_line c.cic);
      client_send c [ "quit" ];
      ignore (input_line c.cic);
      client_close c;
      ignore port)

let test_e2e_failover_on_kill () =
  with_cluster (fun port t (s0, _s1) ->
      let id0 = Registry.id_of ~host:"127.0.0.1" ~port:s0.sport in
      let victims = shops_on t ~shard_id:id0 ~n:4 in
      let c = client_connect port in
      (* Warm traffic across the cluster, then kill shard 0. *)
      client_send c (List.map (fun s -> "query " ^ s) victims);
      ignore (client_recv c (List.length victims));
      Server.shutdown s0.sctl;
      (* Keep querying a shop homed on the dead shard: every request is
         answered (shard-unavailable at worst, never a hang), and
         within the probe budget traffic fails over to the live
         shard. *)
      let victim = List.hd victims in
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec await_failover unavailable =
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "no failover within 10s of shard kill"
        else begin
          client_send c [ "query " ^ victim ];
          let reply = input_line c.cic in
          if reply = Printf.sprintf "info shop=%s unknown" victim then unavailable
          else if reply = Dispatcher.unavailable_reply then begin
            Unix.sleepf 0.05;
            await_failover (unavailable + 1)
          end
          else Alcotest.failf "unexpected reply during failover: %s" reply
        end
      in
      ignore (await_failover 0);
      let reg = Dispatcher.registry t in
      (match Registry.find_opt reg id0 with
      | Some e -> Alcotest.(check bool) "dead shard marked dead" true (e.Registry.state = Registry.Dead)
      | None -> Alcotest.fail "killed shard vanished from the registry");
      Alcotest.(check bool) "failover counted" true
        ((Registry.stats reg).Registry.failovers > 0);
      (* The re-routed shop now behaves normally (sticky on the live shard). *)
      client_send c [ "query " ^ victim; "query " ^ victim ];
      List.iter
        (fun reply ->
          Alcotest.(check string) "stable after failover"
            (Printf.sprintf "info shop=%s unknown" victim)
            reply)
        (client_recv c 2);
      client_send c [ "quit" ];
      ignore (input_line c.cic);
      client_close c;
      ignore port)

let test_e2e_metrics_aggregation () =
  with_cluster (fun port t (s0, s1) ->
      let c = client_connect port in
      client_send c [ "query warm-a"; "metrics" ];
      ignore (input_line c.cic);
      let reply = input_line c.cic in
      client_send c [ "quit" ];
      ignore (input_line c.cic);
      client_close c;
      Alcotest.(check bool) "metrics reply framed" true
        (String.length reply > 8 && String.sub reply 0 8 = "metrics ");
      let series = String.split_on_char ';' (String.sub reply 8 (String.length reply - 8)) in
      let has pfx = List.exists (fun l -> String.length l >= String.length pfx
                                          && String.sub l 0 (String.length pfx) = pfx) series in
      Alcotest.(check bool) "cluster_shards present" true (has "cluster_shards 2");
      Alcotest.(check bool) "cluster_live_shards present" true (has "cluster_live_shards 2");
      List.iter
        (fun s ->
          let sid = Registry.id_of ~host:"127.0.0.1" ~port:s.sport in
          Alcotest.(check bool)
            (Printf.sprintf "shard %s up series present" sid)
            true
            (has (Printf.sprintf "cluster_shard_up{shard=\"%s\"} 1" sid)))
        [ s0; s1 ];
      (* Relabeled shard series: at least one serve_* line carrying a
         shard label made it through. *)
      Alcotest.(check bool) "relabeled shard series present" true
        (List.exists
           (fun l ->
             String.length l > 6 && String.sub l 0 6 = "serve_"
             && (match String.index_opt l '{' with
                | Some i -> String.length l > i + 7 && String.sub l (i + 1) 6 = "shard="
                | None -> false))
           series);
      ignore (port, t))

(* Widened upstreams: with two lanes per shard, two concurrent clients
   land on distinct lanes (round-robin pick, sticky thereafter), yet
   each still reads its replies strictly in its own request order; the
   lane topology is visible in the aggregated metrics; and a shard kill
   drains BOTH lanes — every in-flight request is answered and traffic
   fails over, exactly as with one lane. *)
let test_e2e_multi_lane () =
  with_cluster ~upstream_conns:2 (fun port t (s0, s1) ->
      let id0 = Registry.id_of ~host:"127.0.0.1" ~port:s0.sport in
      let id1 = Registry.id_of ~host:"127.0.0.1" ~port:s1.sport in
      let on0 = shops_on t ~shard_id:id0 ~n:6 and on1 = shops_on t ~shard_id:id1 ~n:6 in
      let interleaved = List.concat_map (fun (a, b) -> [ a; b ]) (List.combine on0 on1) in
      let c1 = client_connect port and c2 = client_connect port in
      (* Both clients push the same interleaved cross-shard burst; each
         connection's replies must come back in its own request order
         whichever lane carries them. *)
      client_send c1 (List.map (fun s -> "query " ^ s) interleaved);
      client_send c2 (List.map (fun s -> "query " ^ s) interleaved);
      let check c label =
        let replies = client_recv c (List.length interleaved) in
        List.iter2
          (fun s reply ->
            Alcotest.(check string)
              (label ^ ": reply order matches request order")
              (Printf.sprintf "info shop=%s unknown" s)
              reply)
          interleaved replies
      in
      check c1 "client1";
      check c2 "client2";
      (* The lane topology shows in the aggregated exposition: config
         gauge, and both lanes of at least one shard connected (two
         clients -> round-robin picked lane 0 and lane 1). *)
      client_send c1 [ "metrics" ];
      let reply = input_line c1.cic in
      let series =
        String.split_on_char ';' (String.sub reply 8 (String.length reply - 8))
      in
      let has pfx =
        List.exists
          (fun l ->
            String.length l >= String.length pfx && String.sub l 0 (String.length pfx) = pfx)
          series
      in
      Alcotest.(check bool) "upstream_conns gauge" true (has "cluster_upstream_conns 2");
      Alcotest.(check bool) "a shard runs both lanes" true
        (List.exists
           (fun id -> has (Printf.sprintf "cluster_upstream_live_lanes{shard=\"%s\"} 2" id))
           [ id0; id1 ]);
      (* Kill shard 0 with requests on its lanes: every request is
         answered (unavailable at worst), then traffic fails over. *)
      let victim = List.hd on0 in
      Server.shutdown s0.sctl;
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec await_failover () =
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "no failover within 10s of shard kill"
        else begin
          client_send c1 [ "query " ^ victim ];
          let reply = input_line c1.cic in
          if reply = Printf.sprintf "info shop=%s unknown" victim then ()
          else if reply = Dispatcher.unavailable_reply then begin
            Unix.sleepf 0.05;
            await_failover ()
          end
          else Alcotest.failf "unexpected reply during multi-lane failover: %s" reply
        end
      in
      await_failover ();
      (* The second client keeps working too (its sticky pick was
         invalidated by the epoch bump, so it re-picks a live lane). *)
      client_send c2 [ "query " ^ victim ];
      Alcotest.(check bool) "client2 answered after lane drain" true
        (match input_line c2.cic with
        | reply ->
            reply = Printf.sprintf "info shop=%s unknown" victim
            || reply = Dispatcher.unavailable_reply);
      List.iter
        (fun c ->
          client_send c [ "quit" ];
          ignore (input_line c.cic);
          client_close c)
        [ c1; c2 ];
      ignore port)

let suite =
  [
    ("registry: parse_id accepts host:port and rejects junk", `Quick, test_parse_id);
    ("registry: routing is sticky and membership-pure", `Quick, test_routing_sticky);
    ("registry: every shard owns a fair share of shops", `Quick, test_routing_balance);
    ("registry: failover moves only the dead shard's shops", `Quick, test_failover_order);
    ("registry: probe threshold and revival", `Quick, test_probe_threshold);
    ("registry: register/deregister round-trips restore routing", `Quick,
     test_membership_roundtrip);
    ("dispatcher: metrics relabel injects the shard label", `Quick, test_relabel);
    ("cluster: cross-shard pipelining preserves reply order", `Slow,
     test_e2e_sticky_and_order);
    ("cluster: ctl/1 register/deregister round-trips", `Slow, test_e2e_ctl_roundtrip);
    ("cluster: shard kill fails over without losing replies", `Slow,
     test_e2e_failover_on_kill);
    ("cluster: metrics aggregates shard expositions", `Slow, test_e2e_metrics_aggregation);
    ("cluster: multi-lane upstreams keep order and drain on kill", `Slow,
     test_e2e_multi_lane);
  ]
