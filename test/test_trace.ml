(* Request tracing through the serve pipeline: deterministic JSONL
   traces across domain counts, schema validation, reply transparency
   (tracing must not perturb the reply stream), and the metrics
   protocol command. *)

module Obs = E2e_obs.Obs
module Json = E2e_obs.Json
module Quantile = E2e_obs.Quantile
module Admission = E2e_serve.Admission
module Batcher = E2e_serve.Batcher
module Protocol = E2e_serve.Protocol
module Rtrace = E2e_serve.Rtrace
module Schema = Rtrace.Schema

(* Leave the global telemetry/tracing/clock state as we found it. *)
let with_clean_telemetry f =
  Fun.protect
    ~finally:(fun () ->
      Rtrace.set_writer None;
      Obs.set_stats false;
      Obs.reset_metrics ();
      Obs.Clock.use_wall_clock ())
    f

(* The --det-clock source: each read advances a dyadic counter, so every
   timestamp and duration is an exact float. *)
let install_det_clock () =
  let k = ref 0 in
  Obs.Clock.set_source (fun () ->
      incr k;
      float_of_int !k *. (1. /. 1024.))

let log = Test_serve.gen_log 11 60

(* Replay [log] with a buffer trace writer at the given domain count;
   returns (trace bytes, rendered replies). *)
let traced_run ~jobs =
  let buf = Buffer.create 4096 in
  install_det_clock ();
  Rtrace.set_writer (Some (fun line -> Buffer.add_string buf line; Buffer.add_char buf '\n'));
  let config = { Batcher.default_config with Batcher.jobs; Batcher.cache_capacity = 64 } in
  let outcomes = Batcher.process_log (Batcher.create ~config ()) log in
  Rtrace.set_writer None;
  (Buffer.contents buf, Test_serve.render_outcomes outcomes)

let parse_trace bytes =
  String.split_on_char '\n' bytes
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l ->
         match Json.of_string l with
         | Error msg -> Alcotest.failf "invalid trace JSON: %s" msg
         | Ok j -> (
             match Schema.of_json j with
             | Error msg -> Alcotest.failf "invalid trace record: %s" msg
             | Ok None -> Alcotest.failf "non-trace line in trace stream: %s" l
             | Ok (Some r) -> r))

let test_trace_deterministic () =
  with_clean_telemetry @@ fun () ->
  let t1, r1 = traced_run ~jobs:1 in
  let t4, r4 = traced_run ~jobs:4 in
  Alcotest.(check string) "replies identical across -j" r1 r4;
  Alcotest.(check string) "trace bytes identical across -j" t1 t4;
  Alcotest.(check bool) "trace non-empty" true (String.length t1 > 0)

let test_trace_schema () =
  with_clean_telemetry @@ fun () ->
  let bytes, _ = traced_run ~jobs:2 in
  let records = parse_trace bytes in
  Alcotest.(check int)
    "one record per stage plus one done record per request"
    (List.length log * (Rtrace.n_stages + 1))
    (List.length records);
  let v = Schema.validator () in
  List.iter
    (fun r ->
      match Schema.feed v r with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "validator rejected record: %s" msg)
    records;
  (match Schema.check_closed v with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "unclosed trace: %s" msg);
  Alcotest.(check int) "every request completed" (List.length log) (Schema.completed v);
  (* Stage durations tile the end-to-end latency exactly per request
     (the validator enforces a tolerance; under the det clock the sums
     are exact). *)
  let sums = Hashtbl.create 64 in
  List.iter
    (fun (r : Schema.record) ->
      if r.seq < Rtrace.n_stages then
        Hashtbl.replace sums r.id
          (r.dur +. Option.value ~default:0. (Hashtbl.find_opt sums r.id))
      else
        Alcotest.(check (float 0.))
          (Printf.sprintf "request %d: stage sum tiles e2e" r.id)
          r.dur (Hashtbl.find sums r.id))
    records

let test_validator_rejects () =
  let r id seq stage dur =
    { Schema.id; op = "submit"; shop = "s"; stage; seq; t = 1.; dur; verdict = None }
  in
  let feed1 record =
    let v = Schema.validator () in
    Schema.feed v record
  in
  (match feed1 (r 1 0 "queue" (-0.5)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "negative duration accepted");
  (match feed1 (r 1 1 "canonicalize" 0.1) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-order stage accepted");
  (match feed1 (r 1 0 "solve" 0.1) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "stage/seq mismatch accepted");
  let v = Schema.validator () in
  (match Schema.feed v (r 1 0 "queue" 0.1) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid first stage rejected: %s" msg);
  match Schema.check_closed v with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unclosed request accepted"

(* The concurrent TCP transport emits the same per-request trace
   schema as the in-process path: every request from every connection
   yields a full, well-ordered stage tiling and a closed trace, even
   with two clients interleaving submissions. *)
let test_trace_schema_concurrent () =
  with_clean_telemetry @@ fun () ->
  let buf = Buffer.create 4096 in
  install_det_clock ();
  Rtrace.set_writer
    (Some (fun line -> Buffer.add_string buf line; Buffer.add_char buf '\n'));
  let requests = 12 and n_clients = 2 in
  let logs =
    List.init n_clients (fun c ->
        List.map
          (Test_serve.prefix_shop (Printf.sprintf "t%d." c))
          (Test_serve.gen_log (700 + c) requests))
  in
  let results =
    Test_serve.with_server ~jobs:2 ~accept_pool:n_clients ~max_connections:n_clients
      (fun port ->
        logs
        |> List.map (fun l ->
               let lines = List.map Protocol.render_request l in
               Domain.spawn (fun () -> Test_serve.tcp_session port lines))
        |> List.map Domain.join)
  in
  Rtrace.set_writer None;
  List.iter
    (fun (_, replies) ->
      Alcotest.(check int) "every request answered" (requests + 1) (List.length replies))
    results;
  let records = parse_trace (Buffer.contents buf) in
  let total = n_clients * requests in
  Alcotest.(check int)
    "one record per stage plus one done record per request"
    (total * (Rtrace.n_stages + 1))
    (List.length records);
  let v = Schema.validator () in
  List.iter
    (fun r ->
      match Schema.feed v r with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "validator rejected record: %s" msg)
    records;
  (match Schema.check_closed v with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "unclosed trace: %s" msg);
  Alcotest.(check int) "every request completed" total (Schema.completed v)

(* Tracing must be invisible in the replies: same log, writer on vs
   off, byte-identical rendered outcomes. *)
let test_replies_unchanged_by_tracing () =
  with_clean_telemetry @@ fun () ->
  let plain =
    let config = { Batcher.default_config with Batcher.cache_capacity = 64 } in
    Test_serve.render_outcomes
      (Batcher.process_log (Batcher.create ~config ()) log)
  in
  let _, traced = traced_run ~jobs:1 in
  Alcotest.(check string) "replies identical with tracing on" plain traced

let test_metrics_command () =
  with_clean_telemetry @@ fun () ->
  Obs.set_stats true;
  Obs.reset_metrics ();
  (match Protocol.parse_request "metrics" with
  | Ok Protocol.Metrics -> ()
  | _ -> Alcotest.fail "bare metrics line must parse");
  (match Protocol.parse_request "metrics now" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "metrics takes no arguments");
  let config = { Batcher.default_config with Batcher.cache_capacity = 64 } in
  let batcher = Batcher.create ~config () in
  ignore (Batcher.process_log batcher log);
  let reply = Protocol.render_metrics batcher in
  Alcotest.(check bool) "reply framed as metrics" true
    (String.starts_with ~prefix:"metrics " reply);
  let lines =
    String.split_on_char ';'
      (String.sub reply 8 (String.length reply - 8))
  in
  Alcotest.(check bool) "single line reply" true
    (List.for_all (fun l -> not (String.contains l '\n')) lines);
  let has prefix = List.exists (String.starts_with ~prefix) lines in
  List.iter
    (fun prefix ->
      Alcotest.(check bool) (prefix ^ " line present") true (has prefix))
    [
      "serve_queue_depth ";
      "serve_submitted_total ";
      "serve_batches_completed_total ";
      "serve_shop_verdicts_total{shop=";
      "serve_cache_hits_total ";
      "serve_stage_solve{quantile=\"0.5\"}";
      "serve_stage_queue{quantile=\"0.99\"}";
      "serve_e2e_count ";
      "serve_admitted_total ";
    ];
  (* Every line is NAME VALUE with a parseable number. *)
  List.iter
    (fun line ->
      match String.index_opt line ' ' with
      | None -> Alcotest.failf "unparseable metrics line: %s" line
      | Some i -> (
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          match float_of_string_opt v with
          | Some _ -> ()
          | None -> Alcotest.failf "non-numeric value in line: %s" line))
    lines

let test_service_stats () =
  with_clean_telemetry @@ fun () ->
  let config = { Batcher.default_config with Batcher.cache_capacity = 64 } in
  let batcher = Batcher.create ~config () in
  ignore (Batcher.process_log batcher log);
  let stats = Batcher.service_stats batcher in
  Alcotest.(check int) "every request submitted" (List.length log)
    stats.Batcher.submitted;
  Alcotest.(check int) "ids issued per submission" (List.length log)
    (Batcher.last_id batcher);
  Alcotest.(check bool) "batches ran" true (stats.Batcher.batches > 0);
  let verdict_total =
    List.fold_left
      (fun acc (_, (a, r, u)) -> acc + a + r + u)
      0 stats.Batcher.verdicts
  in
  Alcotest.(check bool) "shop verdicts recorded" true (verdict_total > 0)

let suite =
  [
    Alcotest.test_case "trace deterministic across -j" `Quick test_trace_deterministic;
    Alcotest.test_case "trace schema valid and tiling" `Quick test_trace_schema;
    Alcotest.test_case "validator rejects malformed traces" `Quick test_validator_rejects;
    Alcotest.test_case "trace schema valid over the concurrent transport" `Slow
      test_trace_schema_concurrent;
    Alcotest.test_case "replies unchanged by tracing" `Quick
      test_replies_unchanged_by_tracing;
    Alcotest.test_case "metrics protocol command" `Quick test_metrics_command;
    Alcotest.test_case "service stats" `Quick test_service_stats;
  ]
