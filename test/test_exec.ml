(* The domain pool and everything the parallel experiment engine
   promises: submission-order results, deterministic failure, domain-safe
   telemetry merge, and byte-identical experiment output for every jobs
   value. *)

module Pool = E2e_exec.Pool
module Obs = E2e_obs.Obs
module E = E2e_experiments.Experiments

let test_map_matches_sequential () =
  let items = Array.init 97 (fun i -> i) in
  let f x = (x * x) + 3 in
  let seq = Array.map f items in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d preserves submission order" jobs)
        seq
        (Pool.map ~jobs f items))
    [ 1; 2; 4; 7 ]

let test_init_matches_sequential () =
  let f i = Printf.sprintf "#%d" (i * 2) in
  Alcotest.(check (array string))
    "init jobs=3 equals sequential" (Array.init 23 f)
    (Pool.init ~jobs:3 23 f)

let test_more_jobs_than_items () =
  Alcotest.(check (array int)) "jobs > length" [| 10; 11 |] (Pool.init ~jobs:8 2 (fun i -> i + 10))

let test_edges () =
  Alcotest.(check (array int)) "empty array" [||] (Pool.map ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "singleton" [| 9 |] (Pool.map ~jobs:4 (fun x -> x * 9) [| 1 |]);
  Alcotest.(check (array int)) "zero-length init" [||] (Pool.init ~jobs:4 0 (fun i -> i));
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Pool.map: jobs must be >= 1") (fun () ->
      ignore (Pool.map ~jobs:0 (fun x -> x) [| 1; 2 |]));
  Alcotest.check_raises "negative jobs rejected"
    (Invalid_argument "Pool.map: jobs must be >= 1") (fun () ->
      ignore (Pool.map ~jobs:(-3) (fun x -> x) [| 1; 2 |]));
  Alcotest.check_raises "negative length rejected"
    (Invalid_argument "Pool.init: negative length") (fun () ->
      ignore (Pool.init ~jobs:2 (-1) (fun i -> i)))

exception Boom of int

let test_exception_propagation () =
  (* Jobs 20 and 60 both raise; the lowest submission index must win
     whatever the domain count.  The parallel path additionally runs
     every job to completion (no early stop, so which jobs ran does not
     depend on domain scheduling); jobs=1 is plain sequential fail-fast. *)
  let ran = Atomic.make 0 in
  List.iter
    (fun jobs ->
      Atomic.set ran 0;
      try
        ignore
          (Pool.init ~jobs 100 (fun i ->
               Atomic.incr ran;
               if i = 20 || i = 60 then raise (Boom i);
               i));
        Alcotest.fail "exception was swallowed"
      with Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "jobs=%d re-raises the lowest index" jobs)
          20 i)
    [ 1; 4 ];
  Alcotest.(check int) "parallel path ran every job" 100 (Atomic.get ran)

(* [Pool.run] keeps its worker domains parked between calls; the
   observable contract is still exactly [map]'s. *)
let test_run_matches_sequential () =
  let items = Array.init 71 (fun i -> i - 9) in
  let f x = (x * 13) + 1 in
  let seq = Array.map f items in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "run jobs=%d preserves submission order" jobs)
        seq
        (Pool.run ~jobs f items))
    [ 1; 2; 4; 7 ];
  (* Repeated calls reuse the parked pool rather than respawning. *)
  for pass = 1 to 5 do
    Alcotest.(check (array int))
      (Printf.sprintf "pool reuse pass %d" pass)
      seq
      (Pool.run ~jobs:3 f items)
  done;
  Alcotest.(check (array int)) "empty array" [||] (Pool.run ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "jobs > length" [| 4 |] (Pool.run ~jobs:8 (fun x -> x * 2) [| 2 |]);
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Pool.run: jobs must be >= 1") (fun () ->
      ignore (Pool.run ~jobs:0 (fun x -> x) [| 1 |]))

let test_run_exception_lowest_index () =
  List.iter
    (fun jobs ->
      try
        ignore
          (Pool.run ~jobs
             (fun i -> if i = 17 || i = 53 then raise (Boom i) else i)
             (Array.init 80 (fun i -> i)));
        Alcotest.fail "exception was swallowed"
      with Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "run jobs=%d re-raises the lowest index" jobs)
          17 i)
    [ 1; 2; 4 ]

let test_run_nested_inlines () =
  (* A worker calling back into the pool must inline (no deadlock on
     the single shared pool) and still produce sequential results. *)
  let inner x = Array.fold_left ( + ) 0 (Pool.run ~jobs:4 (fun y -> y * y) (Array.init 4 (fun i -> x + i))) in
  let outer = Pool.run ~jobs:3 inner (Array.init 12 (fun i -> i)) in
  Alcotest.(check (array int)) "nested run matches sequential"
    (Array.init 12 (fun i -> inner i))
    outer

let test_resolve_jobs () =
  Alcotest.(check int) "explicit jobs honored" 4 (Pool.resolve_jobs (Some 4));
  Alcotest.check_raises "explicit jobs < 1 rejected"
    (Invalid_argument "Pool.resolve_jobs: jobs must be >= 1") (fun () ->
      ignore (Pool.resolve_jobs (Some 0)));
  Alcotest.(check bool) "default is at least 1" true (Pool.resolve_jobs None >= 1);
  Alcotest.(check bool) "recommended is at least 1" true (Pool.recommended_jobs () >= 1)

(* Telemetry written from worker domains must merge, after join, to the
   same totals a sequential run produces. *)
let with_clean_obs f =
  Fun.protect
    ~finally:(fun () ->
      Obs.set_stats false;
      Obs.reset_metrics ())
    f

let test_obs_merge_across_domains () =
  with_clean_obs @@ fun () ->
  Obs.set_stats true;
  Obs.reset_metrics ();
  let results =
    Pool.init ~jobs:4 200 (fun i ->
        Obs.incr "exec.test.jobs";
        Obs.incr ~by:2 "exec.test.double";
        Obs.observe "exec.test.hist" (float_of_int (i mod 10));
        i)
  in
  Alcotest.(check int) "results intact" 200 (Array.length results);
  Alcotest.(check int) "counter merges to the sequential total" 200
    (Obs.counter_value "exec.test.jobs");
  Alcotest.(check int) "counter with ~by merges" 400 (Obs.counter_value "exec.test.double");
  let hist =
    List.assoc "exec.test.hist" (Obs.histograms ())
  in
  Alcotest.(check int) "histogram count merges" 200 hist.Obs.count;
  Alcotest.(check (float 1e-9)) "histogram min" 0.0 hist.Obs.min;
  Alcotest.(check (float 1e-9)) "histogram max" 9.0 hist.Obs.max;
  (* 20 full passes over 0..9: sum is exact in floats. *)
  Alcotest.(check (float 1e-9)) "histogram sum merges" 900.0 hist.Obs.sum

(* The headline guarantee: experiment output is byte-identical whatever
   the domain count. *)
let render f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_parallel_determinism_fig9a () =
  let sweep = { E.seed = 5; trials = 40; n_tasks = 4; n_processors = 3 } in
  let seq = render (E.fig9a ~sweep ~jobs:1) in
  let par = render (E.fig9a ~sweep ~jobs:4) in
  Alcotest.(check string) "fig9a byte-identical at jobs=4" seq par

let test_parallel_determinism_periodic () =
  let seq = render (E.periodic_sweep ~trials:30 ~seed:11 ~jobs:1) in
  let par = render (E.periodic_sweep ~trials:30 ~seed:11 ~jobs:4) in
  Alcotest.(check string) "periodic sweep byte-identical at jobs=4" seq par

let test_parallel_determinism_fig9x () =
  let sweep = { E.seed = 2; trials = 15; n_tasks = 4; n_processors = 3 } in
  let seq = render (E.fig9_extensions ~sweep ~jobs:1) in
  let par = render (E.fig9_extensions ~sweep ~jobs:3) in
  Alcotest.(check string) "fig9x byte-identical at jobs=3" seq par

let suite =
  [
    Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
    Alcotest.test_case "init matches sequential" `Quick test_init_matches_sequential;
    Alcotest.test_case "more jobs than items" `Quick test_more_jobs_than_items;
    Alcotest.test_case "edge cases" `Quick test_edges;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "run matches sequential on a persistent pool" `Quick
      test_run_matches_sequential;
    Alcotest.test_case "run exception propagation" `Quick test_run_exception_lowest_index;
    Alcotest.test_case "nested run inlines" `Quick test_run_nested_inlines;
    Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
    Alcotest.test_case "telemetry merges across domains" `Quick test_obs_merge_across_domains;
    Alcotest.test_case "fig9a parallel determinism" `Slow test_parallel_determinism_fig9a;
    Alcotest.test_case "periodic sweep parallel determinism" `Slow
      test_parallel_determinism_periodic;
    Alcotest.test_case "fig9x parallel determinism" `Slow test_parallel_determinism_fig9x;
  ]
