module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
open Helpers

let two_task_shop () =
  Flow_shop.of_params
    [| (r 0, r 10, [| r 2; r 3 |]); (r 1, r 12, [| r 2; r 3 |]) |]

let good_starts () = [| [| r 0; r 2 |]; [| r 2; r 5 |] |]

let test_accessors () =
  let s = Schedule.of_flow_shop (two_task_shop ()) (good_starts ()) in
  check_rat "start" (r 2) (Schedule.start s ~task:1 ~stage:0);
  check_rat "finish" (r 5) (Schedule.finish s ~task:0 ~stage:1);
  check_rat "completion T2" (r 8) (Schedule.completion s 1);
  check_rat "makespan" (r 8) (Schedule.makespan s)

let test_feasible () =
  let s = Schedule.of_flow_shop (two_task_shop ()) (good_starts ()) in
  assert_feasible "hand schedule" s;
  Alcotest.(check bool) "permutation" true (Schedule.is_permutation s)

let has_violation pred s =
  List.exists pred (Schedule.violations s)

let test_release_violation () =
  let s =
    Schedule.of_flow_shop (two_task_shop ()) [| [| r 0; r 2 |]; [| Rat.zero; r 5 |] |]
  in
  Alcotest.(check bool) "detects release" true
    (has_violation (function Schedule.Release_violated { task = 1; _ } -> true | _ -> false) s)

let test_deadline_violation () =
  let s = Schedule.of_flow_shop (two_task_shop ()) [| [| r 0; r 8 |]; [| r 2; r 5 |] |] in
  Alcotest.(check bool) "detects deadline" true
    (has_violation (function Schedule.Deadline_missed { task = 0; _ } -> true | _ -> false) s)

let test_precedence_violation () =
  let s = Schedule.of_flow_shop (two_task_shop ()) [| [| r 0; r 1 |]; [| r 2; r 5 |] |] in
  Alcotest.(check bool) "detects precedence" true
    (has_violation
       (function Schedule.Precedence_violated { task = 0; stage = 1; _ } -> true | _ -> false)
       s)

let test_overlap_violation () =
  let s = Schedule.of_flow_shop (two_task_shop ()) [| [| r 0; r 2 |]; [| r 1; r 5 |] |] in
  Alcotest.(check bool) "detects overlap" true
    (has_violation (function Schedule.Overlap { processor = 0; _ } -> true | _ -> false) s)

let test_overlap_on_reused_processor () =
  (* Recurrent shop: stage 0 and stage 2 share P1; make them collide for
     different tasks. *)
  let visit = Visit.of_one_based [| 1; 2; 1 |] in
  let tasks =
    Array.init 2 (fun id ->
        Task.make ~id ~release:Rat.zero ~deadline:(r 20) ~proc_times:(Array.make 3 (r 2)))
  in
  let shop = Recurrence_shop.make ~visit tasks in
  let s = Schedule.make shop [| [| r 0; r 2; r 4 |]; [| r 3; r 6; r 8 |] |] in
  Alcotest.(check bool) "collision across visits detected" true
    (has_violation (function Schedule.Overlap { processor = 0; _ } -> true | _ -> false) s)

(* Regression: the duplicate check in is_permutation used to compare
   only adjacent entries of the processor order, so an interleaved
   revisit pattern like T1,T2,T1,T2 slipped through as a "permutation". *)
let test_is_permutation_nonadjacent_duplicate () =
  let visit = Visit.of_one_based [| 1; 2; 1 |] in
  let tasks =
    Array.init 2 (fun id ->
        Task.make ~id ~release:Rat.zero ~deadline:(r 20) ~proc_times:(Array.make 3 (r 1)))
  in
  let shop = Recurrence_shop.make ~visit tasks in
  let s = Schedule.make shop [| [| r 0; r 2; r 4 |]; [| r 2; r 4; r 6 |] |] in
  assert_feasible "interleaved revisits are feasible" s;
  Alcotest.(check bool) "P1 order T1,T2,T1,T2 is not a permutation" false
    (Schedule.is_permutation s)

(* Regression: the overlap scan used to compare only adjacent entries in
   start order, so an entry hidden entirely behind a long earlier entry
   was never compared against it. *)
let test_overlap_hidden_behind_long_entry () =
  let shop =
    Flow_shop.of_params
      [|
        (r 0, r 30, [| r 10 |]) (* A occupies [0,10] *);
        (r 0, r 30, [| r 1 |]) (* B at [2,3]: adjacent to A, caught before *);
        (r 0, r 30, [| r 1 |]) (* C at [5,6]: only overlaps A, two entries back *);
      |]
  in
  let s = Schedule.of_flow_shop shop [| [| r 0 |]; [| r 2 |]; [| r 5 |] |] in
  let overlaps_with_c =
    List.exists
      (function
        | Schedule.Overlap { a = 2, _; _ } | Schedule.Overlap { b = 2, _; _ } -> true
        | _ -> false)
      (Schedule.violations s)
  in
  Alcotest.(check bool) "overlap against the long entry is reported" true overlaps_with_c

(* Regression: pp_gantt used to clamp negative start times into cell 0,
   drawing such entries on top of whatever legitimately sat there. *)
let test_pp_gantt_negative_start () =
  let shop = Flow_shop.of_params [| (r 0, r 20, [| r 2; r 2 |]) |] in
  let s = Schedule.of_flow_shop shop [| [| r (-2); r 1 |] |] in
  let gantt = Format.asprintf "%a" (Schedule.pp_gantt ?unit_time:None) s in
  Alcotest.(check bool) "axis origin is announced" true
    (Helpers.contains gantt "t = -2 at column 0");
  (* Stage 0 runs over [-2,0] and stage 1 over [1,3]; with the axis
     shifted they occupy cells 0-1 on P1 and cells 3-4 on P2 instead of
     both being clamped against column 0. *)
  Alcotest.(check bool) "P1 entry drawn from the shifted origin" true
    (Helpers.contains gantt "P1 |11...|");
  Alcotest.(check bool) "P2 entry keeps its true offset" true
    (Helpers.contains gantt "P2 |...11|");
  let nonneg = Schedule.of_flow_shop shop [| [| r 0; r 2 |] |] in
  let plain = Format.asprintf "%a" (Schedule.pp_gantt ?unit_time:None) nonneg in
  Alcotest.(check bool) "non-negative schedules keep the bare axis" false
    (Helpers.contains plain "at column 0")

let test_forward_pass () =
  let shop = Recurrence_shop.of_traditional (two_task_shop ()) in
  let s = Schedule.forward_pass shop ~order:[| 0; 1 |] in
  assert_feasible "forward pass" s;
  check_rat "T1 starts at release" (r 0) (Schedule.start s ~task:0 ~stage:0);
  check_rat "T2 waits for P1" (r 2) (Schedule.start s ~task:1 ~stage:0);
  check_rat "T2 stage 2 waits for P2" (r 5) (Schedule.start s ~task:1 ~stage:1)

let test_forward_pass_respects_release () =
  let shop =
    Flow_shop.of_params [| (r 5, r 20, [| r 2; r 3 |]); (r 0, r 20, [| r 2; r 3 |]) |]
  in
  let s = Schedule.forward_pass (Recurrence_shop.of_traditional shop) ~order:[| 0; 1 |] in
  check_rat "waits for release 5" (r 5) (Schedule.start s ~task:0 ~stage:0)

let test_left_shift () =
  let shop = two_task_shop () in
  (* A needlessly delayed schedule. *)
  let s = Schedule.of_flow_shop shop [| [| r 1; r 4 |]; [| r 3; r 8 |] |] in
  let c = Schedule.left_shift s in
  assert_feasible "compacted" c;
  check_rat "T1 pulled to release" (r 0) (Schedule.start c ~task:0 ~stage:0);
  check_rat "T1 stage 2 chains" (r 2) (Schedule.start c ~task:0 ~stage:1);
  Alcotest.(check bool) "makespan not worse" true
    Rat.(Schedule.makespan c <= Schedule.makespan s)

let test_left_shift_idempotent () =
  let shop = Recurrence_shop.of_traditional (two_task_shop ()) in
  let s = Schedule.forward_pass shop ~order:[| 1; 0 |] in
  let once = Schedule.left_shift s in
  let twice = Schedule.left_shift once in
  Alcotest.(check bool) "idempotent" true (once.Schedule.starts = twice.Schedule.starts)

let test_pp_smoke () =
  let s = Schedule.of_flow_shop (two_task_shop ()) (good_starts ()) in
  let table = Format.asprintf "%a" Schedule.pp_table s in
  Alcotest.(check bool) "table mentions T0" true (Helpers.contains table "T0");
  let gantt = Format.asprintf "%a" (Schedule.pp_gantt ?unit_time:None) s in
  Alcotest.(check bool) "gantt has both processor rows" true
    (Helpers.contains gantt "P1 |" && Helpers.contains gantt "P2 |")

(* Random-instance properties: left_shift of any forward-pass schedule
   keeps feasibility and never delays any completion. *)
let prop_left_shift_monotone =
  Helpers.to_alcotest
    (QCheck.Test.make ~name:"left_shift never delays a completion" ~count:200
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
       (fun seed ->
         let g = E2e_prng.Prng.create seed in
         let shop =
           E2e_workload.Feasible_gen.generate g
             {
               E2e_workload.Feasible_gen.n_tasks = 5;
               n_processors = 3;
               mean_tau = 1.0;
               stdev = 0.4;
               slack_factor = 1.0;
             }
         in
         let rshop = Recurrence_shop.of_traditional shop in
         let order = E2e_prng.Prng.permutation g 5 in
         let s = Schedule.forward_pass rshop ~order in
         let shifted = Schedule.left_shift s in
         let ok = ref (Schedule.is_feasible shifted = Schedule.is_feasible s
                       || Schedule.is_feasible shifted) in
         for i = 0 to 4 do
           if Rat.(Schedule.completion shifted i > Schedule.completion s i) then ok := false
         done;
         !ok))

let prop_forward_pass_feasible_on_generated =
  Helpers.to_alcotest
    (QCheck.Test.make ~name:"witness order forward pass is checker-clean" ~count:200
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
       (fun seed ->
         let g = E2e_prng.Prng.create seed in
         let shop, witness =
           E2e_workload.Feasible_gen.generate_with_witness g
             {
               E2e_workload.Feasible_gen.n_tasks = 4;
               n_processors = 4;
               mean_tau = 1.0;
               stdev = 0.5;
               slack_factor = 0.5;
             }
         in
         ignore shop;
         Schedule.is_feasible witness))

let suite =
  [
    prop_left_shift_monotone;
    prop_forward_pass_feasible_on_generated;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "feasible schedule" `Quick test_feasible;
    Alcotest.test_case "release violation" `Quick test_release_violation;
    Alcotest.test_case "deadline violation" `Quick test_deadline_violation;
    Alcotest.test_case "precedence violation" `Quick test_precedence_violation;
    Alcotest.test_case "overlap violation" `Quick test_overlap_violation;
    Alcotest.test_case "overlap on reused processor" `Quick test_overlap_on_reused_processor;
    Alcotest.test_case "non-adjacent duplicate breaks permutation" `Quick
      test_is_permutation_nonadjacent_duplicate;
    Alcotest.test_case "overlap hidden behind long entry" `Quick
      test_overlap_hidden_behind_long_entry;
    Alcotest.test_case "gantt with negative starts" `Quick test_pp_gantt_negative_start;
    Alcotest.test_case "forward pass" `Quick test_forward_pass;
    Alcotest.test_case "forward pass release" `Quick test_forward_pass_respects_release;
    Alcotest.test_case "left shift" `Quick test_left_shift;
    Alcotest.test_case "left shift idempotent" `Quick test_left_shift_idempotent;
    Alcotest.test_case "pretty printers" `Quick test_pp_smoke;
  ]
