module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Instance_io = E2e_model.Instance_io
module Gen = E2e_fuzz.Gen
module Oracle = E2e_fuzz.Oracle
module Shrink = E2e_fuzz.Shrink
module Fuzz = E2e_fuzz.Fuzz
open Helpers

(* {1 Differential campaigns} *)

(* Every class must survive a sequential mini-campaign with zero
   disagreements (the full-size runs live in `make fuzz-smoke`). *)
let test_class cls () =
  let rep = Fuzz.run_class ~jobs:1 ~seed:11 ~trials:80 cls in
  Alcotest.(check int) "all trials accounted for" rep.Fuzz.trials
    (rep.Fuzz.agreed + rep.Fuzz.skipped + List.length rep.Fuzz.findings);
  Alcotest.(check int) "no disagreements" 0 (List.length rep.Fuzz.findings)

let render rep = Format.asprintf "%a" Fuzz.pp_report rep

let test_parallel_determinism () =
  let a = Fuzz.run_class ~jobs:1 ~seed:3 ~trials:60 Gen.H in
  let b = Fuzz.run_class ~jobs:3 ~seed:3 ~trials:60 Gen.H in
  Alcotest.(check string) "report identical across job counts" (render a) (render b)

(* {1 Generator guards} *)

let test_gen_guards () =
  List.iter
    (fun cls ->
      for trial = 0 to 40 do
        let g = E2e_prng.Prng.of_path [| 99; Gen.code cls; trial |] in
        let shop = Gen.instance g cls in
        let n = Recurrence_shop.n_tasks shop in
        let k = Visit.length shop.Recurrence_shop.visit in
        (match cls with
        | Gen.R ->
            Alcotest.(check bool) "R: tasks within oracle guard" true (n >= 1 && n <= 4);
            Alcotest.(check bool) "R: stages within oracle guard" true (k <= 7);
            Alcotest.(check bool) "R: identical unit" true
              (Recurrence_shop.identical_unit shop <> None);
            Alcotest.(check bool) "R: common release" true
              (Recurrence_shop.identical_releases shop <> None);
            Alcotest.(check bool) "R: single loop" true
              (Visit.single_loop shop.Recurrence_shop.visit <> None)
        | Gen.Eedf | Gen.A | Gen.H ->
            Alcotest.(check bool) "traditional" true
              (Visit.is_traditional shop.Recurrence_shop.visit);
            Alcotest.(check bool) "tasks within branch-bound guard" true (n >= 1 && n <= 8);
            Alcotest.(check bool) "processors within branch-bound guard" true (k <= 6)
        | Gen.Eedf_fast ->
            (* Engine differential: no oracle guard, but the instances
               must be identical-length and traditional. *)
            Alcotest.(check bool) "eedf-fast: traditional" true
              (Visit.is_traditional shop.Recurrence_shop.visit);
            Alcotest.(check bool) "eedf-fast: tasks within generator bound" true
              (n >= 1 && n <= 41);
            Alcotest.(check bool) "eedf-fast: identical length" true
              (Flow_shop.is_identical_length
                 (Flow_shop.make ~processors:k shop.Recurrence_shop.tasks)
              <> None)
        | Gen.Eedf_inc ->
            (* Incremental differential: the churn oracle re-solves from
               scratch after every edit, so the generator stays a notch
               below eedf-fast in size. *)
            Alcotest.(check bool) "eedf-inc: traditional" true
              (Visit.is_traditional shop.Recurrence_shop.visit);
            Alcotest.(check bool) "eedf-inc: tasks within generator bound" true
              (n >= 2 && n <= 23);
            Alcotest.(check bool) "eedf-inc: identical length" true
              (Flow_shop.is_identical_length
                 (Flow_shop.make ~processors:k shop.Recurrence_shop.tasks)
              <> None));
        ()
      done)
    Gen.all

(* {1 Oracle classification} *)

let arbitrary_shop () =
  Recurrence_shop.of_traditional
    (Flow_shop.of_params [| (r 0, r 10, [| r 2; r 1 |]); (r 0, r 12, [| r 1; r 3 |]) |])

(* Handing a non-identical-length instance to the EEDF differential must
   be flagged as a precondition violation, not swallowed. *)
let test_oracle_flags_precondition () =
  match Oracle.run Gen.Eedf (arbitrary_shop ()) with
  | Oracle.Bug { kind = Oracle.Precondition; _ } -> ()
  | o -> Alcotest.failf "expected a precondition bug, got %a" Oracle.pp_outcome o

let test_oracle_agrees_on_sane_instances () =
  List.iter
    (fun (cls, shop) ->
      match Oracle.run cls shop with
      | Oracle.Agree -> ()
      | o -> Alcotest.failf "%s: expected agree, got %a" (Gen.name cls) Oracle.pp_outcome o)
    [
      ( Gen.Eedf,
        Recurrence_shop.of_traditional
          (Flow_shop.of_params [| (r 0, r 8, [| r 1; r 1 |]); (r 0, r 3, [| r 1; r 1 |]) |]) );
      (Gen.H, arbitrary_shop ());
    ]

(* {1 Shrinking} *)

let test_shrink_candidates_strictly_smaller () =
  let shop = arbitrary_shop () in
  let m = Shrink.measure shop in
  let cands = Shrink.candidates shop in
  Alcotest.(check bool) "has candidates" true (cands <> []);
  List.iter
    (fun c -> Alcotest.(check bool) "strictly smaller" true (Shrink.measure c < m))
    cands

(* Minimizing against the live oracle: the non-identical-length instance
   keeps its precondition bug all the way down to a minimal shop, and the
   result is a deterministic function of the input. *)
let test_shrink_end_to_end () =
  let keeps_failing s = Oracle.is_bug (Oracle.run Gen.Eedf s) in
  let shrunk, steps = Shrink.minimize ~keeps_failing (arbitrary_shop ()) in
  Alcotest.(check bool) "still failing" true (keeps_failing shrunk);
  Alcotest.(check bool) "shrank" true (steps > 0);
  Alcotest.(check bool) "measure reduced" true
    (Shrink.measure shrunk < Shrink.measure (arbitrary_shop ()));
  let shrunk', steps' = Shrink.minimize ~keeps_failing (arbitrary_shop ()) in
  Alcotest.(check string) "deterministic result" (Instance_io.to_string shrunk)
    (Instance_io.to_string shrunk');
  Alcotest.(check int) "deterministic step count" steps steps';
  (* No candidate of the result may still fail: the reproducer is minimal. *)
  Alcotest.(check bool) "1-minimal" true
    (not (List.exists keeps_failing (Shrink.candidates shrunk)))

let test_shrink_rounds_rationals () =
  let shop =
    Recurrence_shop.of_traditional
      (Flow_shop.of_params [| (Rat.make 7 3, Rat.make 29 3, [| Rat.make 5 4 |]) |])
  in
  (* Any single-task shop "fails": shrinking must then drive every
     parameter to its simplest form without ever dropping below 1 task. *)
  let keeps_failing s = Recurrence_shop.n_tasks s >= 1 in
  let shrunk, _ = Shrink.minimize ~keeps_failing shop in
  let t = shrunk.Recurrence_shop.tasks.(0) in
  Alcotest.(check int) "release minimized" 1 (Rat.den t.Task.release);
  Alcotest.(check bool) "release is zero" true (Rat.is_zero t.Task.release);
  Alcotest.(check int) "deadline on integers" 1 (Rat.den t.Task.deadline);
  Alcotest.(check int) "tau on integers" 1 (Rat.den t.Task.proc_times.(0))

let test_shrink_drops_tasks () =
  let shop =
    Recurrence_shop.of_traditional
      (Flow_shop.of_params
         (Array.init 5 (fun i -> (r 0, r (10 + i), [| Rat.one; Rat.one |]))))
  in
  let keeps_failing s = Recurrence_shop.n_tasks s >= 2 in
  let shrunk, steps = Shrink.minimize ~keeps_failing shop in
  Alcotest.(check int) "exactly the predicate's minimum" 2 (Recurrence_shop.n_tasks shrunk);
  Alcotest.(check bool) "counted steps" true (steps >= 3)

(* {1 Corpus} *)

(* Tests run inside dune's sandbox (cwd = _build/default/test), so a
   relative scratch directory never escapes the build tree. *)
let with_temp_dir f =
  let dir = "_fuzz_scratch" in
  if Sys.file_exists dir then
    Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_corpus_roundtrip () =
  with_temp_dir @@ fun dir ->
  let shop = arbitrary_shop () in
  let path = Fuzz.write_corpus ~dir ~cls:Gen.H ~provenance:"seed=1 trial=2" shop in
  (match Fuzz.replay_file path with
  | Ok (Gen.H, o) ->
      Alcotest.(check bool) "replays clean" false (Oracle.is_bug o)
  | Ok (c, _) -> Alcotest.failf "wrong class recovered: %s" (Gen.name c)
  | Error m -> Alcotest.fail m);
  (* Content-addressed: same instance, with or without provenance, is one
     file. *)
  let path' = Fuzz.write_corpus ~dir ~cls:Gen.H shop in
  Alcotest.(check string) "stable name" path path';
  Alcotest.(check int) "one instance file" 1
    (Array.length (Array.of_list (List.filter (fun n -> Filename.check_suffix n ".txt")
                                    (Array.to_list (Sys.readdir dir)))))

let test_corpus_rejects_missing_class () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "stray.txt" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "task 0 5 1 1\n");
  match Fuzz.replay_file path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "headerless corpus file must be rejected"

(* The checked-in regression corpus: every entry must parse and replay
   with no disagreement, forever. *)
let test_corpus_replay () =
  let entries = Fuzz.replay_dir "corpus" in
  Alcotest.(check bool) "corpus present" true (entries <> []);
  List.iter
    (fun (name, result) ->
      match result with
      | Error m -> Alcotest.failf "%s: %s" name m
      | Ok (_, o) ->
          if Oracle.is_bug o then Alcotest.failf "%s: %a" name Oracle.pp_outcome o)
    entries

let suite =
  List.map
    (fun cls ->
      Alcotest.test_case
        (Printf.sprintf "differential campaign (%s)" (Gen.name cls))
        `Quick (test_class cls))
    Gen.all
  @ [
      Alcotest.test_case "parallel determinism" `Quick test_parallel_determinism;
      Alcotest.test_case "generator guards" `Quick test_gen_guards;
      Alcotest.test_case "oracle flags precondition" `Quick test_oracle_flags_precondition;
      Alcotest.test_case "oracle agrees on sane instances" `Quick
        test_oracle_agrees_on_sane_instances;
      Alcotest.test_case "shrink candidates strictly smaller" `Quick
        test_shrink_candidates_strictly_smaller;
      Alcotest.test_case "shrink end to end" `Quick test_shrink_end_to_end;
      Alcotest.test_case "shrink rounds rationals" `Quick test_shrink_rounds_rationals;
      Alcotest.test_case "shrink drops tasks" `Quick test_shrink_drops_tasks;
      Alcotest.test_case "corpus round trip" `Quick test_corpus_roundtrip;
      Alcotest.test_case "corpus rejects missing class" `Quick test_corpus_rejects_missing_class;
      Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
    ]
