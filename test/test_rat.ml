module Rat = E2e_rat.Rat
open Helpers

let test_normalisation () =
  check_rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  check_rat "-6/-4 = 3/2" (Rat.make 3 2) (Rat.make (-6) (-4));
  check_rat "6/-4 = -3/2" (Rat.make (-3) 2) (Rat.make 6 (-4));
  check_rat "0/7 = 0" Rat.zero (Rat.make 0 7);
  Alcotest.check Alcotest.int "den of 0 is 1" 1 (Rat.den (Rat.make 0 7))

let test_arithmetic () =
  check_rat "1/2 + 1/3" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  check_rat "1/2 - 1/3" (Rat.make 1 6) (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  check_rat "2/3 * 3/4" (Rat.make 1 2) (Rat.mul (Rat.make 2 3) (Rat.make 3 4));
  check_rat "(1/2) / (1/4)" (r 2) (Rat.div (Rat.make 1 2) (Rat.make 1 4));
  check_rat "mul_int" (Rat.make 3 2) (Rat.mul_int (Rat.make 1 2) 3);
  check_rat "div_int" (Rat.make 1 6) (Rat.div_int (Rat.make 1 2) 3)

let test_division_by_zero () =
  Alcotest.check_raises "make _ 0" Rat.Division_by_zero (fun () -> ignore (Rat.make 1 0));
  Alcotest.check_raises "div by zero" Rat.Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero));
  Alcotest.check_raises "inv zero" Rat.Division_by_zero (fun () -> ignore (Rat.inv Rat.zero))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true Rat.(Rat.make 1 3 < Rat.make 1 2);
  Alcotest.(check bool) "-1/2 < 1/3" true Rat.(Rat.make (-1) 2 < Rat.make 1 3);
  check_rat "min" (Rat.make 1 3) (Rat.min (Rat.make 1 3) (Rat.make 1 2));
  check_rat "max" (Rat.make 1 2) (Rat.max (Rat.make 1 3) (Rat.make 1 2));
  Alcotest.(check int) "sign neg" (-1) (Rat.sign (Rat.make (-1) 5));
  Alcotest.(check int) "sign zero" 0 (Rat.sign Rat.zero)

let test_floor_ceil () =
  Alcotest.(check int) "floor 7/2" 3 (Rat.floor (Rat.make 7 2));
  Alcotest.(check int) "floor -7/2" (-4) (Rat.floor (Rat.make (-7) 2));
  Alcotest.(check int) "ceil 7/2" 4 (Rat.ceil (Rat.make 7 2));
  Alcotest.(check int) "ceil -7/2" (-3) (Rat.ceil (Rat.make (-7) 2));
  Alcotest.(check int) "floor integer" 5 (Rat.floor (r 5));
  Alcotest.(check int) "ceil integer" 5 (Rat.ceil (r 5))

let test_multiples () =
  Alcotest.(check bool) "3/2 multiple of 1/2" true (Rat.is_multiple_of (Rat.make 3 2) (Rat.make 1 2));
  Alcotest.(check bool) "1/3 not multiple of 1/2" false
    (Rat.is_multiple_of (Rat.make 1 3) (Rat.make 1 2))

let test_parse () =
  check_rat "int" (r 42) (q "42");
  check_rat "negative decimal" (Rat.make (-11) 4) (q "-2.75");
  check_rat "fraction" (Rat.make 4 3) (q "4/3");
  check_rat "0.1" (Rat.make 1 10) (q "0.1");
  check_rat "12.5" (Rat.make 25 2) (q "12.5");
  Alcotest.check_raises "garbage" (Invalid_argument "Rat.of_decimal_string: \"x\"") (fun () ->
      ignore (q "x"))

let test_to_string () =
  Alcotest.(check string) "integer" "7" (Rat.to_string (r 7));
  Alcotest.(check string) "fraction" "-3/2" (Rat.to_string (Rat.make 3 (-2)));
  Alcotest.(check string) "decimal pp" "2.75" (Format.asprintf "%a" Rat.pp_decimal (q "2.75"))

let test_of_float () =
  check_rat "0.5" (Rat.make 1 2) (Rat.of_float 0.5);
  check_rat "0.553 approx" (q "0.553") (Rat.of_float ~max_den:1000 0.553);
  check_rat "integer float" (r 3) (Rat.of_float 3.0);
  check_rat "negative" (Rat.make (-1) 4) (Rat.of_float (-0.25))

let test_of_float_non_finite () =
  let rejects name x =
    Alcotest.check_raises name (Invalid_argument "Rat.of_float: non-finite input") (fun () ->
        ignore (Rat.of_float x))
  in
  rejects "nan" Float.nan;
  rejects "+inf" Float.infinity;
  rejects "-inf" Float.neg_infinity;
  Alcotest.check_raises "2^62 overflows" Rat.Overflow (fun () -> ignore (Rat.of_float 0x1p62));
  Alcotest.check_raises "-2^63 overflows" Rat.Overflow (fun () ->
      ignore (Rat.of_float (-0x1p63)))

(* The overflow satellite: operations near max_int must raise
   {!Rat.Overflow} rather than silently wrap. *)
let test_overflow () =
  let big = Rat.of_int (max_int - 1) in
  let raises name f = Alcotest.check_raises name Rat.Overflow (fun () -> ignore (f ())) in
  raises "make min_int _" (fun () -> Rat.make min_int 1);
  raises "make _ min_int" (fun () -> Rat.make 1 min_int);
  raises "of_int min_int" (fun () -> Rat.of_int min_int);
  raises "add doubles past max_int" (fun () -> Rat.add big big);
  raises "mul squares past max_int" (fun () -> Rat.mul big big);
  raises "mul_int past max_int" (fun () -> Rat.mul_int big 3);
  raises "add with overflowing common denominator" (fun () ->
      Rat.add (Rat.make 1 (max_int - 1)) (Rat.make 1 (max_int - 2)));
  raises "compare with overflowing cross products" (fun () ->
      Rat.compare (Rat.make (max_int - 1) (max_int - 2)) (Rat.make (max_int - 3) (max_int - 4)));
  (* Near-limit cases that must NOT raise. *)
  check_rat "max_int representable" (Rat.of_int max_int) (Rat.make max_int 1);
  check_rat "big + 1" (Rat.of_int max_int) (Rat.add big Rat.one);
  check_rat "big - big" Rat.zero (Rat.sub big big);
  check_rat "big * 1" big (Rat.mul big Rat.one);
  check_rat "big / big" Rat.one (Rat.div big big);
  (* Opposite signs are decided without cross-multiplying. *)
  Alcotest.(check int) "sign shortcut avoids overflow" 1
    (Rat.compare (Rat.make (max_int - 1) (max_int - 2)) (Rat.make (-(max_int - 3)) (max_int - 4)));
  Alcotest.(check bool) "huge == itself" true (Rat.equal big big)

(* Random near-max_int operands: every operation either returns the
   exact result (checked against floats, which are reliable at this
   coarse tolerance) or raises Overflow — never a silently wrong value. *)
let arb_huge =
  let gen st =
    let magnitude = QCheck.Gen.oneofl [ max_int - 1; max_int / 2; 1 lsl 40; 1 lsl 31 ] st in
    let num = if QCheck.Gen.bool st then magnitude else -magnitude in
    let den = QCheck.Gen.oneofl [ 1; 3; max_int / 3; max_int - 2 ] st in
    Rat.make num den
  in
  QCheck.make ~print:Rat.to_string gen

let prop_overflow_add =
  QCheck.Test.make ~name:"rat huge add: exact or Overflow" ~count:300
    (QCheck.pair arb_huge arb_huge) (fun (a, b) ->
      match Rat.add a b with
      | exception Rat.Overflow -> true
      | c ->
          let expect = Rat.to_float a +. Rat.to_float b in
          Float.abs (Rat.to_float c -. expect) <= 1e-6 *. Float.max 1.0 (Float.abs expect))

let prop_overflow_mul =
  QCheck.Test.make ~name:"rat huge mul: exact or Overflow" ~count:300
    (QCheck.pair arb_huge arb_huge) (fun (a, b) ->
      match Rat.mul a b with
      | exception Rat.Overflow -> true
      | c ->
          let expect = Rat.to_float a *. Rat.to_float b in
          Float.abs (Rat.to_float c -. expect) <= 1e-6 *. Float.max 1.0 (Float.abs expect))

let prop_overflow_compare =
  QCheck.Test.make ~name:"rat huge compare: agrees with floats or Overflow" ~count:300
    (QCheck.pair arb_huge arb_huge) (fun (a, b) ->
      match Rat.compare a b with
      | exception Rat.Overflow -> true
      | c ->
          let fa = Rat.to_float a and fb = Rat.to_float b in
          (* Floats can collapse nearby huge rationals; only check when
             they are far enough apart to be trusted. *)
          if Float.abs (fa -. fb) <= 1e-3 *. Float.max 1.0 (Float.abs fa) then true
          else Stdlib.compare (Stdlib.compare fa fb) 0 = Stdlib.compare c 0)

let test_sum () =
  check_rat "sum list" (Rat.make 11 6) (Rat.sum [ Rat.one; Rat.make 1 2; Rat.make 1 3 ]);
  check_rat "sum empty" Rat.zero (Rat.sum []);
  check_rat "sum array" (r 6) (Rat.sum_array [| r 1; r 2; r 3 |])

(* Field laws on a grid of small rationals. *)
let arb_rat = QCheck.make ~print:Rat.to_string (rat_gen ~den:12 ~lo:(-20) ~hi:20 ())

let prop_add_comm =
  QCheck.Test.make ~name:"rat add commutative" ~count:500 (QCheck.pair arb_rat arb_rat)
    (fun (a, b) -> Rat.equal (Rat.add a b) (Rat.add b a))

let prop_add_assoc =
  QCheck.Test.make ~name:"rat add associative" ~count:500
    (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
      Rat.equal (Rat.add a (Rat.add b c)) (Rat.add (Rat.add a b) c))

let prop_mul_distributes =
  QCheck.Test.make ~name:"rat mul distributes over add" ~count:500
    (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
      Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_sub_add_inverse =
  QCheck.Test.make ~name:"rat a - b + b = a" ~count:500 (QCheck.pair arb_rat arb_rat)
    (fun (a, b) -> Rat.equal a (Rat.add (Rat.sub a b) b))

let prop_div_mul_inverse =
  QCheck.Test.make ~name:"rat (a/b)*b = a for b<>0" ~count:500 (QCheck.pair arb_rat arb_rat)
    (fun (a, b) ->
      QCheck.assume (not (Rat.is_zero b));
      Rat.equal a (Rat.mul (Rat.div a b) b))

let prop_compare_total =
  QCheck.Test.make ~name:"rat compare antisymmetric" ~count:500 (QCheck.pair arb_rat arb_rat)
    (fun (a, b) -> Rat.compare a b = -Rat.compare b a)

(* The equal-denominator fast path in [compare] must agree with exact
   Int64 cross-multiplication on every input — including pairs forced
   onto a shared denominator, where the fast path actually fires. *)
let compare_int64 a b =
  Int64.compare
    (Int64.mul (Int64.of_int (Rat.num a)) (Int64.of_int (Rat.den b)))
    (Int64.mul (Int64.of_int (Rat.num b)) (Int64.of_int (Rat.den a)))

let test_compare_equal_den () =
  let chk msg a b =
    Alcotest.(check int) msg (compare_int64 a b) (Rat.compare a b);
    Alcotest.(check int) (msg ^ " (swapped)") (compare_int64 b a) (Rat.compare b a)
  in
  chk "3/7 vs 5/7" (Rat.make 3 7) (Rat.make 5 7);
  chk "-3/7 vs 5/7" (Rat.make (-3) 7) (Rat.make 5 7);
  chk "3/7 vs 3/7" (Rat.make 3 7) (Rat.make 3 7);
  chk "integers" (Rat.of_int 4) (Rat.of_int (-9));
  (* Equal denominators near max_int: cross products would overflow
     (even in Int64), the numerator path must answer anyway. *)
  let d = max_int - 1 in
  Alcotest.(check int) "huge shared denominator" (-1)
    (Stdlib.compare (Rat.compare (Rat.make 3 d) (Rat.make 5 d)) 0);
  check_rat "min on shared grid" (Rat.make 3 7) (Rat.min (Rat.make 5 7) (Rat.make 3 7));
  check_rat "max on shared grid" (Rat.make 5 7) (Rat.max (Rat.make 5 7) (Rat.make 3 7))

let prop_compare_matches_int64 =
  QCheck.Test.make ~name:"rat compare agrees with Int64 cross-multiplication" ~count:1000
    (QCheck.triple arb_rat arb_rat QCheck.bool) (fun (a, b, share_den) ->
      (* Half the pairs are projected onto b's denominator so the
         equal-denominator branch is exercised, not just the general
         one. *)
      let a = if share_den then Rat.make (Rat.num a) (Rat.den b) else a in
      Stdlib.compare (Rat.compare a b) 0 = Stdlib.compare (compare_int64 a b) 0
      && Rat.equal (Rat.min a b) (if compare_int64 a b <= 0 then a else b)
      && Rat.equal (Rat.max a b) (if compare_int64 a b >= 0 then a else b))

let prop_floor_ceil =
  QCheck.Test.make ~name:"rat floor <= x <= ceil, within 1" ~count:500 arb_rat (fun a ->
      let f = Rat.floor a and c = Rat.ceil a in
      Rat.(r f <= a) && Rat.(a <= r c) && c - f <= 1)

let prop_to_float_order =
  QCheck.Test.make ~name:"rat to_float preserves strict order" ~count:500
    (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
      if Rat.(a < b) then Rat.to_float a < Rat.to_float b else true)

let suite =
  [
    Alcotest.test_case "normalisation" `Quick test_normalisation;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "comparison" `Quick test_compare;
    Alcotest.test_case "equal-denominator fast path" `Quick test_compare_equal_den;
    Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
    Alcotest.test_case "multiples" `Quick test_multiples;
    Alcotest.test_case "parsing" `Quick test_parse;
    Alcotest.test_case "printing" `Quick test_to_string;
    Alcotest.test_case "of_float" `Quick test_of_float;
    Alcotest.test_case "of_float rejects non-finite" `Quick test_of_float_non_finite;
    Alcotest.test_case "overflow detection" `Quick test_overflow;
    Alcotest.test_case "sums" `Quick test_sum;
    to_alcotest prop_add_comm;
    to_alcotest prop_add_assoc;
    to_alcotest prop_mul_distributes;
    to_alcotest prop_sub_add_inverse;
    to_alcotest prop_div_mul_inverse;
    to_alcotest prop_compare_total;
    to_alcotest prop_compare_matches_int64;
    to_alcotest prop_floor_ceil;
    to_alcotest prop_to_float_order;
    to_alcotest prop_overflow_add;
    to_alcotest prop_overflow_mul;
    to_alcotest prop_overflow_compare;
  ]
